//! Tables 1–7 / Figure 1 regeneration benches: dataset generation,
//! page materialization, and the measured crawl.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use origin_browser::{BrowserKind, PageLoader, UniverseEnv};
use origin_netsim::SimRng;
use origin_webgen::{Dataset, DatasetConfig};

fn bench_dataset_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset_generate");
    g.sample_size(10);
    for &sites in &[100u32, 500] {
        g.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, &sites| {
            b.iter(|| {
                Dataset::generate(DatasetConfig {
                    sites,
                    ..Default::default()
                })
                .sites()
                .len()
            })
        });
    }
    g.finish();
}

fn bench_page_materialization(c: &mut Criterion) {
    let d = Dataset::generate(DatasetConfig {
        sites: 200,
        ..Default::default()
    });
    let sites: Vec<_> = d.successful_sites().cloned().collect();
    c.bench_function("page_materialize", |b| {
        let mut i = 0;
        b.iter(|| {
            let site = &sites[i % sites.len()];
            i += 1;
            d.page_for(site).resources.len()
        })
    });
}

fn bench_page_load(c: &mut Criterion) {
    // The per-page cost of the full measured crawl (Table 1 unit).
    let mut g = c.benchmark_group("page_load");
    g.sample_size(20);
    for kind in [
        BrowserKind::Chromium,
        BrowserKind::Firefox,
        BrowserKind::IdealOrigin,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let d = Dataset::generate(DatasetConfig {
                    sites: 60,
                    ..Default::default()
                });
                let sites: Vec<_> = d.successful_sites().cloned().collect();
                let loader = PageLoader::new(kind);
                let mut i = 0;
                b.iter(|| {
                    let site = &sites[i % sites.len()];
                    i += 1;
                    let page = d.page_for(site);
                    let mut env = UniverseEnv::new(&d);
                    env.flush_dns();
                    let mut rng = SimRng::seed_from_u64(site.page_seed);
                    loader.load(&page, &mut env, &mut rng).request_count()
                })
            },
        );
    }
    g.finish();
}

fn bench_full_characterization(c: &mut Criterion) {
    // One small but complete Tables 1–7 regeneration (the repro
    // binary's --sites 150 path).
    let mut g = c.benchmark_group("crawl_characterize");
    g.sample_size(10);
    g.bench_function("sites_150", |b| {
        b.iter(|| {
            let r = origin_bench::run_crawl(150, 0x0516);
            (r.characterization.pages, r.plan.total_sites)
        })
    });
    g.finish();
}

fn bench_crawl_scaling(c: &mut Criterion) {
    // Thread-scaling of the sharded crawl (fixed sites + seed, so
    // every thread count computes the byte-identical result and the
    // ratio of times is pure parallel speedup).
    let mut g = c.benchmark_group("crawl_scaling");
    g.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let r = origin_bench::run_crawl_threads(400, 0x0516, threads);
                    (r.characterization.pages, r.plan.total_sites)
                })
            },
        );
    }
    g.finish();
}

fn bench_crawl_faulted(c: &mut Criterion) {
    // The crawl under fault injection. `none` measures the pure
    // plumbing overhead of threading a zero profile through every page
    // load (must be within noise of the clean crawl above); `mixed` is
    // the acceptance profile with all three fault classes firing.
    use origin_netsim::FaultProfile;
    let mut g = c.benchmark_group("crawl_faulted");
    g.sample_size(10);
    let mixed = FaultProfile::parse("drop=0.01,h421=0.005,middlebox=0.1").unwrap();
    for (label, profile) in [
        ("clean", None),
        ("none", Some(FaultProfile::none())),
        ("mixed", Some(mixed)),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &profile,
            |b, profile| {
                b.iter(|| {
                    let r = origin_bench::run_crawl_faulted(150, 0x0516, 2, None, profile.as_ref());
                    (r.characterization.pages, r.metrics.counter("fault.retries"))
                })
            },
        );
    }
    g.finish();
}

fn bench_crawl_mixed(c: &mut Criterion) {
    // The mixed-protocol crawl across legacy shares. `share_0.00`
    // measures the pure plumbing overhead of threading the share
    // through every page load (must be within noise of the clean
    // crawl); the nonzero shares add the h1 machine drive, ALPN
    // bookkeeping, and the per-connection redundancy probes.
    let mut g = c.benchmark_group("crawl_mixed");
    g.sample_size(10);
    for &share in &[0.0f64, 0.25, 0.5] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("share_{share:.2}")),
            &share,
            |b, &share| {
                b.iter(|| {
                    let r = origin_bench::run_crawl_mixed(150, 0x0516, 2, None, None, share);
                    (r.characterization.pages, r.metrics.counter("h1.requests"))
                })
            },
        );
    }
    g.finish();
}

fn bench_crawl_h3(c: &mut Criterion) {
    // The crawl across h3 shares. `share_0.00` measures the pure
    // plumbing overhead of threading the share through every page
    // load (must be within noise of the clean crawl); the nonzero
    // shares add Alt-Svc learning, QUIC handshakes, QPACK encoding,
    // and CID rotation on every upgraded connection.
    let mut g = c.benchmark_group("crawl_h3");
    g.sample_size(10);
    for &share in &[0.0f64, 0.5, 1.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("share_{share:.2}")),
            &share,
            |b, &share| {
                b.iter(|| {
                    let r = origin_bench::run_crawl_h3(150, 0x0516, 2, None, None, 0.0, share);
                    (r.characterization.pages, r.metrics.counter("h3.requests"))
                })
            },
        );
    }
    g.finish();
}

fn bench_pool_decide(c: &mut Criterion) {
    // The per-request coalescing decision, indexed vs. the linear
    // reference scan, across pool sizes. The indexed path should be
    // flat in pool size; the linear path grows with it.
    use origin_browser::pool::ReuseDecision;
    use origin_browser::{ConnectionPool, PoolPartition, PooledConnection};
    use origin_dns::name::name;
    use origin_web::Protocol;
    use std::net::{IpAddr, Ipv4Addr};

    let mut g = c.benchmark_group("pool_decide");
    for &conns in &[16usize, 64, 256] {
        let mut pool = ConnectionPool::new();
        for i in 0..conns {
            let host = format!("h{i}.svc{}.example", i % 17);
            let ip = IpAddr::V4(Ipv4Addr::new(10, 1, (i / 251) as u8, (i % 251) as u8));
            let mut b = origin_tls::CertificateBuilder::new(name(&host));
            b = b.san(name(&format!("*.svc{}.example", i % 17)));
            pool.insert(PooledConnection {
                host: name(&host),
                ip,
                available_set: vec![ip].into(),
                cert: std::sync::Arc::new(b.build()),
                origin_set: None,
                protocol: Protocol::H2,
                partition: PoolPartition::Default,
                bytes_transferred: 0,
                in_flight: 0,
                busy_until: 0.0,
                closed: false,
                quic: false,
            });
        }
        // A host only a wildcard SAN covers, resolving to an address
        // no connection holds: the decision must consult the SAN
        // indexes (or scan everything) before answering.
        let host = name("new.svc3.example");
        let answer = [IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1))];
        for (label, linear) in [("indexed", false), ("linear", true)] {
            g.bench_with_input(BenchmarkId::new(label, conns), &linear, |b, &linear| {
                b.iter(|| {
                    let d = if linear {
                        pool.decide_linear(
                            BrowserKind::Chromium,
                            &host,
                            &answer,
                            PoolPartition::Default,
                            6,
                            0.0,
                            |_| true,
                        )
                    } else {
                        pool.decide(
                            BrowserKind::Chromium,
                            &host,
                            &answer,
                            PoolPartition::Default,
                            6,
                            0.0,
                            |_| true,
                        )
                    };
                    matches!(d, ReuseDecision::New)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dataset_generation,
    bench_page_materialization,
    bench_page_load,
    bench_full_characterization,
    bench_crawl_scaling,
    bench_crawl_faulted,
    bench_crawl_mixed,
    bench_crawl_h3,
    bench_pool_decide
);
criterion_main!(benches);
