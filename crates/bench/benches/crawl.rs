//! Tables 1–7 / Figure 1 regeneration benches: dataset generation,
//! page materialization, and the measured crawl.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use origin_browser::{BrowserKind, PageLoader, UniverseEnv};
use origin_netsim::SimRng;
use origin_webgen::{Dataset, DatasetConfig};

fn bench_dataset_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset_generate");
    g.sample_size(10);
    for &sites in &[100u32, 500] {
        g.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, &sites| {
            b.iter(|| {
                Dataset::generate(DatasetConfig {
                    sites,
                    ..Default::default()
                })
                .sites()
                .len()
            })
        });
    }
    g.finish();
}

fn bench_page_materialization(c: &mut Criterion) {
    let d = Dataset::generate(DatasetConfig {
        sites: 200,
        ..Default::default()
    });
    let sites: Vec<_> = d.successful_sites().cloned().collect();
    c.bench_function("page_materialize", |b| {
        let mut i = 0;
        b.iter(|| {
            let site = &sites[i % sites.len()];
            i += 1;
            d.page_for(site).resources.len()
        })
    });
}

fn bench_page_load(c: &mut Criterion) {
    // The per-page cost of the full measured crawl (Table 1 unit).
    let mut g = c.benchmark_group("page_load");
    g.sample_size(20);
    for kind in [
        BrowserKind::Chromium,
        BrowserKind::Firefox,
        BrowserKind::IdealOrigin,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let d = Dataset::generate(DatasetConfig {
                    sites: 60,
                    ..Default::default()
                });
                let sites: Vec<_> = d.successful_sites().cloned().collect();
                let loader = PageLoader::new(kind);
                let mut i = 0;
                b.iter(|| {
                    let site = &sites[i % sites.len()];
                    i += 1;
                    let page = d.page_for(site);
                    let mut env = UniverseEnv::new(&d);
                    env.flush_dns();
                    let mut rng = SimRng::seed_from_u64(site.page_seed);
                    loader.load(&page, &mut env, &mut rng).request_count()
                })
            },
        );
    }
    g.finish();
}

fn bench_full_characterization(c: &mut Criterion) {
    // One small but complete Tables 1–7 regeneration (the repro
    // binary's --sites 150 path).
    let mut g = c.benchmark_group("crawl_characterize");
    g.sample_size(10);
    g.bench_function("sites_150", |b| {
        b.iter(|| {
            let r = origin_bench::run_crawl(150, 0x0516);
            (r.characterization.pages, r.plan.total_sites)
        })
    });
    g.finish();
}

fn bench_crawl_scaling(c: &mut Criterion) {
    // Thread-scaling of the sharded crawl (fixed sites + seed, so
    // every thread count computes the byte-identical result and the
    // ratio of times is pure parallel speedup).
    let mut g = c.benchmark_group("crawl_scaling");
    g.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let r = origin_bench::run_crawl_threads(400, 0x0516, threads);
                    (r.characterization.pages, r.plan.total_sites)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dataset_generation,
    bench_page_materialization,
    bench_page_load,
    bench_full_characterization,
    bench_crawl_scaling
);
criterion_main!(benches);
