//! Design-choice ablations from DESIGN.md §5: coalescing policy,
//! certificate strategy (§6.5), passive sampling rate, and middlebox
//! prevalence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use origin_browser::{BrowserKind, PageLoader, UniverseEnv};
use origin_cdn::{DeploymentMode, MiddleboxIncident, PassivePipeline, SampleGroup};
use origin_dns::name::name;
use origin_netsim::{HandshakeModel, LinkProfile, SimRng, TlsVersion};
use origin_tls::{strategy_cost, CertStrategy, CertificateBuilder};
use origin_webgen::{Dataset, DatasetConfig};

/// Coalescing-policy ablation: the same pages loaded under each
/// browser policy — the cost of strictness, end to end.
fn bench_policy_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_policy");
    g.sample_size(10);
    for kind in [
        BrowserKind::Chromium,
        BrowserKind::Firefox,
        BrowserKind::FirefoxOrigin,
        BrowserKind::IdealIp,
        BrowserKind::IdealOrigin,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let d = Dataset::generate(DatasetConfig {
                    sites: 60,
                    ..Default::default()
                });
                let sites: Vec<_> = d.successful_sites().cloned().collect();
                let loader = PageLoader::new(kind);
                b.iter(|| {
                    let mut tls = 0u64;
                    for site in sites.iter().take(20) {
                        let page = d.page_for(site);
                        let mut env = UniverseEnv::new(&d);
                        env.flush_dns();
                        let mut rng = SimRng::seed_from_u64(site.page_seed);
                        tls += loader.load(&page, &mut env, &mut rng).tls_connections();
                    }
                    tls
                })
            },
        );
    }
    g.finish();
}

/// §6.5 certificate-strategy ablation: handshake cost of a
/// least-effort certificate vs one giant SAN certificate
/// (10000-sans.badssl.com-style), via the record-flight model.
fn bench_cert_strategy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cert_strategy");
    let link = LinkProfile::new(20.0, 50.0);
    for &sans in &[3usize, 10, 100, 1_000, 5_000] {
        g.bench_with_input(BenchmarkId::from_parameter(sans), &sans, |b, &sans| {
            let cert = CertificateBuilder::new(name("site.example"))
                .sans((0..sans).map(|i| name(&format!("host-{i:05}.site.example"))))
                .build();
            b.iter(|| {
                let hs = HandshakeModel::for_certificate(TlsVersion::Tls13, cert.wire_size());
                hs.connect_nominal(&link).total().as_micros()
            })
        });
    }
    g.finish();
}

/// Sampling-rate ablation: pipeline cost vs estimator input volume.
fn bench_sampling_rates(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(0xAB1A);
    let group = SampleGroup::build(600, &mut rng);
    let mut g = c.benchmark_group("ablation_sampling_rate");
    g.sample_size(10);
    for &rate in &[0.01f64, 0.10, 1.0] {
        g.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &rate| {
            b.iter(|| {
                let mut p = PassivePipeline::new(DeploymentMode::OriginFrames);
                p.config.visits = 10_000;
                p.config.sample_rate = rate;
                p.run(&group, 3).sampled_records
            })
        });
    }
    g.finish();
}

/// Middlebox-prevalence sweep: failed connections vs the share of
/// clients behind the §6.7 agent.
fn bench_middlebox_prevalence(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(0xAB1B);
    let group = SampleGroup::build(400, &mut rng);
    let mut g = c.benchmark_group("ablation_middlebox");
    for &share in &[0.0f64, 0.01, 0.05, 0.25] {
        g.bench_with_input(BenchmarkId::from_parameter(share), &share, |b, &share| {
            let inc = MiddleboxIncident {
                affected_client_share: share,
                vendor_fixed: false,
            };
            b.iter(|| {
                let mut rng = SimRng::seed_from_u64(13);
                let (e, ctl) = inc.simulate(&group, 10_000, true, &mut rng);
                e.torn_down + ctl.torn_down
            })
        });
    }
    g.finish();
}

/// §6.5 strategy comparison: total certificate bytes per connection
/// for SAN additions vs one giant cert vs secondary certificates.
fn bench_strategy_bytes(c: &mut Criterion) {
    let base = CertificateBuilder::new(name("site.example"))
        .san(name("*.site.example"))
        .build();
    let needed: Vec<_> = (0..7)
        .map(|i| name(&format!("svc{i}.provider.example")))
        .collect();
    let mut g = c.benchmark_group("ablation_strategy_bytes");
    for (label, strat) in [
        ("least_effort_san", CertStrategy::LeastEffortSan),
        ("giant_san", CertStrategy::GiantSan),
        ("secondary_certs", CertStrategy::SecondaryCerts),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &strat, |b, &strat| {
            b.iter(|| strategy_cost(strat, &base, &needed, 1_000_000, 0.5).total_bytes())
        });
    }
    g.finish();
}

/// §6.6 transport ablation: connection-setup budgets for H2 over TCP,
/// H2 + TCP Fast Open, and QUIC/H3 0-RTT.
fn bench_transport_setup(c: &mut Criterion) {
    let link = LinkProfile::new(30.0, 50.0);
    let mut g = c.benchmark_group("ablation_transport");
    let variants: [(&str, HandshakeModel); 4] = [
        (
            "h2_tls12",
            HandshakeModel {
                tls: TlsVersion::Tls12,
                extra_cert_flights: 0,
                tcp_fast_open: false,
            },
        ),
        (
            "h2_tls13",
            HandshakeModel {
                tls: TlsVersion::Tls13,
                extra_cert_flights: 0,
                tcp_fast_open: false,
            },
        ),
        (
            "h2_tfo_tls13",
            HandshakeModel {
                tls: TlsVersion::Tls13,
                extra_cert_flights: 0,
                tcp_fast_open: true,
            },
        ),
        (
            "h3_0rtt",
            HandshakeModel {
                tls: TlsVersion::Tls13ZeroRtt,
                extra_cert_flights: 0,
                tcp_fast_open: true,
            },
        ),
    ];
    for (label, hs) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(label), &hs, |b, hs| {
            b.iter(|| hs.connect_nominal(&link).total().as_micros())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policy_ablation,
    bench_cert_strategy,
    bench_strategy_bytes,
    bench_transport_setup,
    bench_sampling_rates,
    bench_middlebox_prevalence
);
criterion_main!(benches);
