//! §5 deployment benches: sample setup (Figure 6), active measurement
//! (Figures 7a/7b), passive pipeline (§5.2/§5.3), longitudinal series
//! (Figure 8), and the §6.7 incident.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use origin_cdn::{
    ActiveMeasurement, DeploymentMode, LongitudinalRun, MiddleboxIncident, PassivePipeline,
    SampleGroup, Treatment,
};
use origin_netsim::SimRng;

fn group(n: u32) -> SampleGroup {
    let mut rng = SimRng::seed_from_u64(0xBE9C);
    SampleGroup::build(n, &mut rng)
}

fn bench_sample_setup(c: &mut Criterion) {
    // Figure 6: 5000-cert reissue with equal-byte additions.
    let mut g = c.benchmark_group("sample_setup");
    g.sample_size(10);
    g.bench_function("build_5000", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(0xF16);
            let g = SampleGroup::build(5_000, &mut rng);
            assert!(g.equal_byte_check());
            g.sites.len()
        })
    });
    g.finish();
}

fn bench_active(c: &mut Criterion) {
    let g = group(800);
    let mut grp = c.benchmark_group("active_measurement");
    grp.sample_size(10);
    for (label, m) in [
        ("fig7a_ip", ActiveMeasurement::ip_experiment()),
        ("fig7b_origin", ActiveMeasurement::origin_experiment()),
    ] {
        grp.bench_with_input(BenchmarkId::from_parameter(label), &m, |b, m| {
            b.iter(|| {
                let r = m.run(&g, Treatment::Experiment, 42);
                r.new_connections.total()
            })
        });
    }
    grp.finish();
}

fn bench_passive(c: &mut Criterion) {
    let g = group(800);
    let mut grp = c.benchmark_group("passive_pipeline");
    grp.sample_size(10);
    for (label, mode) in [
        ("ip_aligned", DeploymentMode::IpAligned),
        ("origin_frames", DeploymentMode::OriginFrames),
    ] {
        grp.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let mut p = PassivePipeline::new(mode);
                p.config.visits = 20_000;
                p.run(&g, 7).sampled_records
            })
        });
    }
    grp.finish();
}

fn bench_longitudinal(c: &mut Criterion) {
    let g = group(800);
    let mut grp = c.benchmark_group("longitudinal");
    grp.sample_size(10);
    grp.bench_function("fig8_window", |b| {
        let run = LongitudinalRun {
            days: 28,
            deploy_start_day: 7,
            deploy_end_day: 21,
            visits_per_day: 1_000,
        };
        b.iter(|| {
            let s = run.run(&g, DeploymentMode::OriginFrames, 9);
            s.experiment.total() + s.control.total()
        })
    });
    grp.finish();
}

fn bench_incident(c: &mut Criterion) {
    let g = group(400);
    c.bench_function("incident_50k_connections", |b| {
        let inc = MiddleboxIncident::default();
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(11);
            let (e, ctl) = inc.simulate(&g, 50_000, true, &mut rng);
            e.torn_down + ctl.torn_down
        })
    });
}

criterion_group!(
    benches,
    bench_sample_setup,
    bench_active,
    bench_passive,
    bench_longitudinal,
    bench_incident
);
criterion_main!(benches);
