//! The sharded crawl's headline guarantee: the thread count changes
//! wall-clock time and nothing else. Every series, table, and counter
//! must come out identical whether the crawl runs on 1, 2, or 8
//! workers — this is what makes `repro --threads N` artifacts
//! byte-comparable across machines.

use origin_bench::{
    run_crawl_faulted, run_crawl_threads, run_crawl_traced, trace_site, CrawlResults,
};
use origin_cdn::{ActiveMeasurement, SampleGroup, Treatment};
use origin_netsim::{FaultProfile, SimRng};
use origin_trace::{to_chrome_json, EventKind, Sampler};

const SITES: u32 = 300;
const SEED: u64 = 0xD373;

fn assert_results_equal(a: &CrawlResults, b: &CrawlResults, label: &str) {
    // Raw per-site series, in rank order.
    assert_eq!(a.measured.dns, b.measured.dns, "{label}: measured dns");
    assert_eq!(a.measured.tls, b.measured.tls, "{label}: measured tls");
    assert_eq!(a.measured.plt, b.measured.plt, "{label}: measured plt");
    assert_eq!(a.model_ip.plt, b.model_ip.plt, "{label}: model ip plt");
    assert_eq!(
        a.model_origin.plt, b.model_origin.plt,
        "{label}: model origin plt"
    );
    assert_eq!(a.model_cdn_plt, b.model_cdn_plt, "{label}: model cdn plt");
    // Characterization tables.
    assert_eq!(
        a.characterization.pages, b.characterization.pages,
        "{label}: pages"
    );
    assert_eq!(
        a.characterization.table1(),
        b.characterization.table1(),
        "{label}: table1"
    );
    assert_eq!(
        a.characterization.as_requests.top(25),
        b.characterization.as_requests.top(25),
        "{label}: table2"
    );
    assert_eq!(
        a.characterization.hostnames.top(25),
        b.characterization.hostnames.top(25),
        "{label}: table7"
    );
    assert_eq!(
        a.characterization.figure1(),
        b.characterization.figure1(),
        "{label}: figure1"
    );
    // Certificate planning.
    assert_eq!(a.plan.per_site, b.plan.per_site, "{label}: plan per-site");
    assert_eq!(
        a.plan.total_sites, b.plan.total_sites,
        "{label}: plan totals"
    );
    assert_eq!(a.plan.table8(10), b.plan.table8(10), "{label}: table8");
    assert_eq!(
        a.effective.table9(10),
        b.effective.table9(10),
        "{label}: table9"
    );
}

#[test]
fn crawl_identical_across_thread_counts() {
    let one = run_crawl_threads(SITES, SEED, 1);
    let two = run_crawl_threads(SITES, SEED, 2);
    let eight = run_crawl_threads(SITES, SEED, 8);
    assert_results_equal(&one, &two, "1 vs 2 threads");
    assert_results_equal(&one, &eight, "1 vs 8 threads");
}

#[test]
fn crawl_metrics_json_identical_across_thread_counts() {
    // The serialized registry — counters, histograms, AND the
    // simulated phase totals — must be byte-identical for any thread
    // count. This is what lets CI `cmp` two `--metrics` exports and
    // what makes the perf-gate baseline machine-independent. The lib
    // never records wall-clock runtime_ms, so the raw JSON compares.
    let one = run_crawl_threads(SITES, SEED, 1).metrics.to_json();
    let two = run_crawl_threads(SITES, SEED, 2).metrics.to_json();
    let eight = run_crawl_threads(SITES, SEED, 8).metrics.to_json();
    assert!(!one.is_empty());
    assert_eq!(one, two, "metrics JSON: 1 vs 2 threads");
    assert_eq!(one, eight, "metrics JSON: 1 vs 8 threads");
}

#[test]
fn faulted_crawl_identical_across_thread_counts() {
    // Fault decisions draw from per-site fault RNGs, so the sharded
    // crawl's determinism guarantee survives injection: for any fixed
    // profile, the merged output — series, tables, AND the fault.*
    // counters — is byte-identical at any thread count.
    let profile = FaultProfile::parse("drop=0.01,h421=0.02,middlebox=0.15").unwrap();
    let one = run_crawl_faulted(SITES, SEED, 1, None, Some(&profile));
    let two = run_crawl_faulted(SITES, SEED, 2, None, Some(&profile));
    let eight = run_crawl_faulted(SITES, SEED, 8, None, Some(&profile));
    assert!(
        one.metrics.counter("fault.retries") > 0,
        "profile never fired"
    );
    assert_results_equal(&one, &two, "faulted 1 vs 2 threads");
    assert_results_equal(&one, &eight, "faulted 1 vs 8 threads");
    let json = one.metrics.to_json();
    assert_eq!(json, two.metrics.to_json(), "faulted metrics: 1 vs 2");
    assert_eq!(json, eight.metrics.to_json(), "faulted metrics: 1 vs 8");
}

#[test]
fn h3_crawl_identical_across_thread_counts() {
    // Alt-Svc learning, ticket banking, and 0-RTT rejection all draw
    // from per-site state and RNGs, so the sharded crawl's determinism
    // guarantee survives the QUIC upgrade path: for any fixed share,
    // the merged output — series, tables, AND the h3.* counters — is
    // byte-identical at any thread count.
    use origin_bench::run_crawl_h3;
    let one = run_crawl_h3(SITES, SEED, 1, None, None, 0.0, 0.5);
    let two = run_crawl_h3(SITES, SEED, 2, None, None, 0.0, 0.5);
    let eight = run_crawl_h3(SITES, SEED, 8, None, None, 0.0, 0.5);
    assert!(
        one.metrics.counter("h3.connections") > 0,
        "no connection ever upgraded to QUIC"
    );
    assert_results_equal(&one, &two, "h3 1 vs 2 threads");
    assert_results_equal(&one, &eight, "h3 1 vs 8 threads");
    let json = one.metrics.to_json();
    assert_eq!(json, two.metrics.to_json(), "h3 metrics: 1 vs 2");
    assert_eq!(json, eight.metrics.to_json(), "h3 metrics: 1 vs 8");
}

#[test]
fn zero_h3_share_reproduces_the_pure_crawl() {
    // `--h3-share 0` must be indistinguishable from a build without
    // the h3 crate: no h3.* key materializes, no RNG draw happens,
    // and every series matches, so the committed reports stay valid.
    use origin_bench::run_crawl_h3;
    let pure = run_crawl_threads(SITES, SEED, 2);
    let zero = run_crawl_h3(SITES, SEED, 2, None, None, 0.0, 0.0);
    assert_results_equal(&pure, &zero, "pure vs h3 share 0");
    assert_eq!(pure.metrics.to_json(), zero.metrics.to_json());
}

#[test]
fn zero_fault_profile_reproduces_the_clean_crawl() {
    // `--faults` with an all-zero profile must be indistinguishable
    // from no `--faults` at all: no fault.* key materializes and every
    // series matches, so the committed clean reports stay valid.
    let clean = run_crawl_threads(SITES, SEED, 2);
    let zero = run_crawl_faulted(SITES, SEED, 2, None, Some(&FaultProfile::none()));
    assert_results_equal(&clean, &zero, "clean vs zero profile");
    assert_eq!(clean.metrics.to_json(), zero.metrics.to_json());
}

#[test]
fn crawl_metrics_cover_every_pipeline_stage() {
    let r = run_crawl_threads(SITES, SEED, 1);
    for key in [
        "crawl.pages",
        "browser.requests",
        "browser.connections_opened",
        "dns.lookups",
        "certplan.sites",
    ] {
        assert!(r.metrics.counter(key) > 0, "missing counter {key}");
    }
    assert_eq!(r.metrics.counter("crawl.pages"), r.characterization.pages);
    assert_eq!(
        r.metrics.counter("crawl.requests"),
        r.characterization.total_requests
    );
}

#[test]
fn active_measurement_identical_across_thread_counts() {
    let mut rng = SimRng::seed_from_u64(0xAC7);
    let group = SampleGroup::build(600, &mut rng);
    let m = ActiveMeasurement::origin_experiment();
    let seq = m.run(&group, Treatment::Experiment, 42);
    let one = m.run_threads(&group, Treatment::Experiment, 42, 1);
    let four = m.run_threads(&group, Treatment::Experiment, 42, 4);
    assert_eq!(seq.plt_ms, one.plt_ms, "sequential vs 1 thread");
    assert_eq!(seq.plt_ms, four.plt_ms, "sequential vs 4 threads");
    assert_eq!(seq.fraction_with(0), four.fraction_with(0));
    assert_eq!(seq.cdf(), four.cdf());
    // Per-visit metrics shard and merge on the same rank-ordered
    // spine as the sample vectors.
    let json = seq.metrics.to_json();
    assert!(!json.is_empty());
    assert_eq!(json, one.metrics.to_json(), "metrics: sequential vs 1");
    assert_eq!(json, four.metrics.to_json(), "metrics: sequential vs 4");
    assert!(seq.metrics.counter("cdn.active.visits") > 0);
}

#[test]
fn trace_json_identical_across_thread_counts() {
    // The whole point of deriving span/flow IDs from (visit, sequence)
    // and merging tracers along the rank-ordered shard spine: the
    // exported Chrome trace JSON is byte-identical for any --threads.
    let sampler = Sampler::new(4);
    let one = run_crawl_traced(SITES, SEED, 1, Some(&sampler));
    let two = run_crawl_traced(SITES, SEED, 2, Some(&sampler));
    let eight = run_crawl_traced(SITES, SEED, 8, Some(&sampler));
    assert!(!one.trace.is_empty(), "sampled crawl produced no events");
    let json = to_chrome_json(&one.trace);
    assert_eq!(json, to_chrome_json(&two.trace), "trace: 1 vs 2 threads");
    assert_eq!(json, to_chrome_json(&eight.trace), "trace: 1 vs 8 threads");
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // A traced crawl must measure exactly what an untraced crawl
    // measures: tracing reads simulation state, never the RNG.
    let traced = run_crawl_traced(SITES, SEED, 2, Some(&Sampler::new(2)));
    let untraced = run_crawl_threads(SITES, SEED, 2);
    assert_eq!(traced.measured.plt, untraced.measured.plt);
    assert_eq!(traced.measured.dns, untraced.measured.dns);
    assert_eq!(traced.model_origin.plt, untraced.model_origin.plt);
    assert_eq!(traced.metrics.to_json(), untraced.metrics.to_json());
}

#[test]
fn site_trace_links_coalesced_requests_with_flows() {
    // Find a visit that coalesced, then check its exported trace:
    // every coalesced request contributes one flow-start/flow-end pair
    // (the arrow from the reused connection's opening to the request),
    // with matching deterministic IDs.
    let (load, trace) = (1..=50)
        .filter_map(|rank| trace_site(SITES, SEED, rank))
        .find(|(load, _)| load.coalesced_requests() > 0)
        .expect("some top-50 site coalesces under Chromium policy");
    let starts: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FlowStart { id } => Some(id),
            _ => None,
        })
        .collect();
    let ends: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FlowEnd { id } => Some(id),
            _ => None,
        })
        .collect();
    assert_eq!(starts.len(), load.coalesced_requests() as usize);
    assert_eq!(starts, ends, "every flow arrow has both ends");
    let json = to_chrome_json(&trace);
    assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
    // The HAR export of the same visit carries the identical PLT.
    let har = load.to_har_json();
    let plt_ms = load.plt_us() as f64 / 1_000.0;
    assert!(
        har.contains(&format!("\"onLoad\": {plt_ms:?}")),
        "HAR onLoad must equal the visit PLT"
    );
    // Re-tracing the same rank reproduces the same bytes.
    let (_, again) = trace_site(SITES, SEED, load.rank).expect("same rank resolves again");
    assert_eq!(json, to_chrome_json(&again));
}

#[test]
fn series_samples_merge_identities() {
    use origin_bench::SeriesSamples;
    let mut x = SeriesSamples::default();
    x.dns.extend([1.0, 2.0]);
    x.tls.extend([3.0]);
    x.plt.extend([4.0, 5.0]);
    // empty ⊕ x == x.
    let mut from_empty = SeriesSamples::default();
    from_empty.merge(x.clone());
    assert_eq!(from_empty.dns, x.dns);
    assert_eq!(from_empty.plt, x.plt);
    // x ⊕ empty == x.
    let mut with_empty = x.clone();
    with_empty.merge(SeriesSamples::default());
    assert_eq!(with_empty.tls, x.tls);
    // Concatenation is associative: (x ⊕ y) ⊕ z == x ⊕ (y ⊕ z).
    let mut y = SeriesSamples::default();
    y.dns.push(9.0);
    let mut z = SeriesSamples::default();
    z.dns.push(11.0);
    let mut xy_z = x.clone();
    xy_z.merge(y.clone());
    xy_z.merge(z.clone());
    let mut yz = y.clone();
    yz.merge(z.clone());
    let mut x_yz = x.clone();
    x_yz.merge(yz);
    assert_eq!(xy_z.dns, x_yz.dns);
}
