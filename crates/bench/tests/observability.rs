//! Streaming observability (`origin-obs`) wired through the crawl:
//! the timeline and flight-recorder outputs are byte-identical for
//! any thread count, an unobserved crawl is byte-identical to a build
//! without the obs layer, and the optional-subsystem gating rule
//! (`fault.*` / `h1.*` / `h3.*` / `obs.*` keys exist only when the subsystem
//! actually did something) holds.

use origin_bench::{run_crawl_mixed, run_crawl_observed, ObsConfig};
use origin_netsim::{FaultProfile, SimDuration};

const SITES: u32 = 200;
const SEED: u64 = 0xD373;

const PROFILE: &str = "drop=0.01,h421=0.02,middlebox=0.15";

fn observed(threads: usize, obs: &ObsConfig) -> origin_bench::CrawlResults {
    let profile = FaultProfile::parse(PROFILE).unwrap();
    run_crawl_observed(
        SITES,
        SEED,
        threads,
        None,
        Some(&profile),
        0.25,
        0.0,
        Some(obs),
    )
}

#[test]
fn timeline_json_identical_across_thread_counts() {
    // The tentpole guarantee: the exported time series is a pure
    // function of the site list — window-keyed union with commutative
    // cell addition means shard boundaries can't show through.
    let obs = ObsConfig::default();
    let one = observed(1, &obs);
    let two = observed(2, &obs);
    let eight = observed(8, &obs);
    let json = one.timeline.as_ref().unwrap().to_json();
    assert!(json.contains("\"windows\""), "timeline export is empty");
    assert_eq!(
        json,
        two.timeline.as_ref().unwrap().to_json(),
        "timeline: 1 vs 2 threads"
    );
    assert_eq!(
        json,
        eight.timeline.as_ref().unwrap().to_json(),
        "timeline: 1 vs 8 threads"
    );
    // The metrics registry (now carrying obs.* totals) too.
    assert_eq!(one.metrics.to_json(), eight.metrics.to_json());
    // And the dashboard rendered from it, since CI archives it.
    let tl = one.timeline.as_ref().unwrap();
    assert_eq!(
        origin_obs::dashboard::render(tl, 0, SITES - 1),
        origin_obs::dashboard::render(eight.timeline.as_ref().unwrap(), 0, SITES - 1),
    );
}

#[test]
fn observation_does_not_perturb_the_crawl() {
    // Observation reads completed loads; it must never touch the
    // simulation. An observed crawl measures exactly what an
    // unobserved one does, and only the observed run carries obs.*.
    let profile = FaultProfile::parse(PROFILE).unwrap();
    let plain = run_crawl_mixed(SITES, SEED, 2, None, Some(&profile), 0.25);
    let obs = ObsConfig::default();
    let seen = observed(2, &obs);
    assert_eq!(plain.measured.plt, seen.measured.plt);
    assert_eq!(plain.measured.dns, seen.measured.dns);
    assert_eq!(plain.model_origin.plt, seen.model_origin.plt);
    let plain_json = plain.metrics.to_json();
    let seen_json = seen.metrics.to_json();
    assert!(
        !plain_json.contains("\"obs."),
        "unobserved run leaked obs.* keys"
    );
    assert!(seen_json.contains("\"obs.visits\""));
    // Stripping the obs.* lines from the observed export reproduces
    // the unobserved one exactly — obs adds keys, changes nothing.
    let stripped: String = seen_json
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"obs."))
        .collect::<Vec<_>>()
        .join("\n");
    // Key sets differ only by obs.*; every shared key has equal value.
    for line in plain_json.lines() {
        if line.contains("\":") {
            assert!(
                stripped.contains(line.trim_end_matches(',')),
                "observed run changed a non-obs metric line: {line}"
            );
        }
    }
}

#[test]
fn timeline_window_override_and_totals_match_registry() {
    let obs = ObsConfig {
        window: Some(SimDuration::from_millis(2_000)),
        ..ObsConfig::default()
    };
    let r = observed(1, &obs);
    let tl = r.timeline.as_ref().unwrap();
    assert_eq!(tl.window_width(), SimDuration::from_millis(2_000));
    let totals = tl.totals();
    // The timeline's totals and the registry count the same world.
    assert_eq!(totals.visits(), r.metrics.counter("crawl.pages"));
    assert_eq!(totals.visits(), r.metrics.counter("obs.visits"));
    assert_eq!(tl.num_windows() as u64, r.metrics.counter("obs.windows"));
    assert!(r.metrics.counter("obs.flight_events") > 0);
    // PLT sketch count == visits (one PLT per visit), and the p99
    // exemplar points into a real visit's span namespace.
    assert_eq!(totals.plt().count(), totals.visits());
    let ex = totals.plt().quantile_exemplar(0.99).expect("p99 exemplar");
    assert!(ex.rank < SITES);
    assert_eq!(ex.span_id >> 24, ex.rank as u64);
}

#[test]
fn fault_abort_snapshot_identical_across_thread_counts() {
    // The lowest-ranked visit reaching the threshold wins the trigger
    // regardless of which worker processed it; the snapshot JSON must
    // not depend on the thread count.
    let obs = ObsConfig {
        fault_abort: Some(4),
        ..ObsConfig::default()
    };
    let one = observed(1, &obs);
    let eight = observed(8, &obs);
    let snap = one
        .flight
        .as_ref()
        .unwrap()
        .trigger_snapshot_json(4)
        .expect("this profile reaches 4 fault events on some visit");
    assert_eq!(
        snap,
        eight
            .flight
            .as_ref()
            .unwrap()
            .trigger_snapshot_json(4)
            .unwrap(),
        "fault-abort snapshot: 1 vs 8 threads"
    );
    assert!(snap.contains("\"trigger_rank\""));
    assert!(snap.contains("\"code\":\"visit.begin\""));
}

#[test]
fn never_firing_fault_profile_is_byte_identical_to_clean() {
    // The gating rule, pinned: a configured-but-silent subsystem is
    // indistinguishable from an absent one. A profile whose rates are
    // so small it never fires on this dataset must reproduce the clean
    // crawl byte for byte — stronger than the all-zero-profile test,
    // because the fault session objects exist and draw nothing.
    let tiny = FaultProfile::parse("drop=0.0000000001").unwrap();
    let clean = run_crawl_mixed(SITES, SEED, 2, None, None, 0.25);
    let silent = run_crawl_mixed(SITES, SEED, 2, None, Some(&tiny), 0.25);
    assert_eq!(clean.measured.plt, silent.measured.plt);
    let clean_json = clean.metrics.to_json();
    assert_eq!(clean_json, silent.metrics.to_json());
    assert!(
        !clean_json.contains("\"fault."),
        "clean run leaked fault.* keys"
    );
}

#[test]
fn absent_subsystems_export_no_keys() {
    // One clean all-h2 crawl: no fault injection, no legacy sites, no
    // observation. None of the optional families may materialize —
    // this is what keeps the committed baseline schema stable.
    let r = run_crawl_mixed(SITES, SEED, 2, None, None, 0.0);
    let json = r.metrics.to_json();
    for family in ["\"fault.", "\"h1.", "\"h3.", "\"obs."] {
        assert!(
            !json.contains(family),
            "clean crawl exported {family}* keys"
        );
    }
    // Always-on core families are there regardless.
    for family in ["\"browser.", "\"dns.", "\"crawl."] {
        assert!(json.contains(family), "missing core family {family}*");
    }
}
