//! Allocation-count regression gate for the steady-state crawl path.
//!
//! A counting global allocator measures per-visit heap allocations in
//! the two hot phases — page materialization through a recycled
//! [`PageScratch`] and the simulated load through a recycled
//! [`VisitArena`] — and asserts they stay under recorded ceilings.
//!
//! The ceilings document the arena work this crate's crawl loop
//! relies on: before scratch/arena recycling the same loop averaged
//! ~306 allocations per page build and ~206 per load; the recycled
//! path measures ~6 and ~94. The bounds below carry headroom for
//! allocator-placement jitter, not for regressions — an accidental
//! per-visit `Vec`/`String` revival trips them immediately.
//!
//! Allocation counts are only meaningful if no other test mutates the
//! counters concurrently, so this file holds exactly one `#[test]`.

use origin_browser::{BrowserKind, PageLoader, UniverseEnv, VisitArena};
use origin_netsim::SimRng;
use origin_webgen::{Dataset, DatasetConfig, PageScratch, SiteConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates every operation to `System`; the counter is a
// side effect only.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Per-visit allocation ceilings on the steady-state (warm scratch /
/// warm arena) crawl path. Measured ~6 page / ~94 load on the commit
/// that introduced recycling; the margin absorbs hash-map growth
/// timing, not behaviour change.
const MAX_PAGE_ALLOCS_PER_VISIT: u64 = 32;
const MAX_LOAD_ALLOCS_PER_VISIT: u64 = 150;

#[test]
fn steady_state_crawl_allocations_stay_bounded() {
    let dataset = Dataset::generate(DatasetConfig {
        sites: 400,
        seed: 0x516,
        ..Default::default()
    });
    let site_cfgs: Vec<SiteConfig> = dataset.successful_sites().cloned().collect();
    assert!(site_cfgs.len() > 200, "dataset too small to average over");
    let loader = PageLoader::new(BrowserKind::Chromium);
    let mut env = UniverseEnv::new(&dataset);
    let mut metrics = origin_metrics::Registry::new();
    let mut scratch = PageScratch::new();
    let mut arena = VisitArena::new();

    // Warm-up: let every recycled buffer, interner and cache reach its
    // steady-state capacity before counting.
    let (head, tail) = site_cfgs.split_at(site_cfgs.len() / 4);
    for site in head {
        let page = dataset.page_for_with(site, &mut scratch);
        env.flush_dns();
        let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
        let load = loader.load_faulted_with(
            &page,
            &mut env,
            &mut rng,
            None,
            Some(&mut metrics),
            None,
            &mut arena,
        );
        env.take_resolver_stats().record_into(&mut metrics);
        scratch.recycle(page);
        arena.recycle(load);
    }

    let mut page_allocs = 0u64;
    let mut load_allocs = 0u64;
    for site in tail {
        let a0 = allocs();
        let page = dataset.page_for_with(site, &mut scratch);
        let a1 = allocs();
        env.flush_dns();
        let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
        let load = loader.load_faulted_with(
            &page,
            &mut env,
            &mut rng,
            None,
            Some(&mut metrics),
            None,
            &mut arena,
        );
        let a2 = allocs();
        env.take_resolver_stats().record_into(&mut metrics);
        scratch.recycle(page);
        arena.recycle(load);
        page_allocs += a1 - a0;
        load_allocs += a2 - a1;
    }

    let n = tail.len() as u64;
    let per_page = page_allocs / n;
    let per_load = load_allocs / n;
    assert!(
        per_page <= MAX_PAGE_ALLOCS_PER_VISIT,
        "page build allocates {per_page}/visit (ceiling {MAX_PAGE_ALLOCS_PER_VISIT}): \
         a PageScratch buffer stopped being recycled"
    );
    assert!(
        per_load <= MAX_LOAD_ALLOCS_PER_VISIT,
        "page load allocates {per_load}/visit (ceiling {MAX_LOAD_ALLOCS_PER_VISIT}): \
         a VisitArena buffer stopped being recycled"
    );
}
