//! Typed HTTP/1.1 events and the framing they imply.
//!
//! Events are the only currency the state machine deals in. Heads
//! carry owned header lists (the simulator builds a handful per
//! legacy request, so ergonomics beat zero-copy here); body data is
//! carried as a byte *count* — the machine validates framing, it
//! does not buffer payloads.

use std::fmt;

/// A request head: method, target, and headers, HTTP/1.1 implied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `HEAD`, …).
    pub method: String,
    /// Origin-form request target (`/img/r4-0.png`).
    pub target: String,
    /// Header fields in send order, lowercase names.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// A bodyless `GET` with a `host` header, the common case for a
    /// simulated subresource fetch.
    pub fn get(target: &str, host: &str) -> Self {
        Request {
            method: "GET".to_string(),
            target: target.to_string(),
            headers: vec![("host".to_string(), host.to_string())],
        }
    }

    /// First value of the named header (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }
}

/// A response head: status code and headers, HTTP/1.1 implied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `304`, …).
    pub status: u16,
    /// Header fields in send order, lowercase names.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A `200` response framed by `Content-Length: len`.
    pub fn with_content_length(len: u64) -> Self {
        Response {
            status: 200,
            headers: vec![("content-length".to_string(), len.to_string())],
        }
    }

    /// A `200` response with no length header: the body runs until
    /// the server closes the connection (and keep-alive is off).
    pub fn close_delimited() -> Self {
        Response {
            status: 200,
            headers: vec![("connection".to_string(), "close".to_string())],
        }
    }

    /// First value of the named header (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// One HTTP/1.1 protocol event, in the h11 style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A request head crossed the connection.
    Request(Request),
    /// A response head crossed the connection.
    Response(Response),
    /// `n` body bytes crossed the connection.
    Data(u64),
    /// The current message body is complete.
    EndOfMessage,
    /// The peer (or we) closed the transport.
    ConnectionClosed,
}

impl Event {
    /// Stable dotted code for this event kind, used as the flight-
    /// recorder event code when an h1 session is being observed.
    pub fn code(&self) -> &'static str {
        match self {
            Event::Request(_) => "h1.request",
            Event::Response(_) => "h1.response",
            Event::Data(_) => "h1.data",
            Event::EndOfMessage => "h1.end_of_message",
            Event::ConnectionClosed => "h1.connection_closed",
        }
    }
}

/// How a message body is delimited. Strictly `Content-Length` or
/// connection close — `Transfer-Encoding` is refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Exactly this many body bytes remain.
    ContentLength(u64),
    /// Body runs until the connection closes (responses only);
    /// forbids keep-alive by construction.
    CloseDelimited,
    /// No body at all (`HEAD` responses, `204`, `304`, requests
    /// without `Content-Length`).
    NoBody,
}

impl fmt::Display for Framing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Framing::ContentLength(n) => write!(f, "content-length({n})"),
            Framing::CloseDelimited => f.write_str("close-delimited"),
            Framing::NoBody => f.write_str("no-body"),
        }
    }
}
