//! The role/state transition table.
//!
//! Each side of a connection tracks *two* role-local machines — its
//! own sending state and its model of the peer's — exactly as h11
//! does. The table below is the single source of truth: a
//! `(state, event)` pair either names the successor state or is
//! illegal, and [`transition`] returns `None` for illegal pairs so
//! the connection layer can surface a typed error instead of
//! limping on.

use std::fmt;

/// Which side of the connection a machine plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Sends requests, receives responses.
    Client,
    /// Receives requests, sends responses.
    Server,
}

impl Role {
    /// The opposite role.
    pub fn peer(self) -> Role {
        match self {
            Role::Client => Role::Server,
            Role::Server => Role::Client,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Client => "client",
            Role::Server => "server",
        })
    }
}

/// Role-local connection state, h11's vocabulary minus the upgrade
/// states (this universe never switches protocols mid-connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Between request/response cycles; a head may be sent.
    Idle,
    /// Head sent, body (if any) in flight.
    SendBody,
    /// This role's half of the cycle is complete.
    Done,
    /// Cycle complete but keep-alive is off: the only legal next
    /// step is closing.
    MustClose,
    /// Transport closed.
    Closed,
    /// A protocol violation was observed; the connection is dead.
    Error,
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            State::Idle => "idle",
            State::SendBody => "send-body",
            State::Done => "done",
            State::MustClose => "must-close",
            State::Closed => "closed",
            State::Error => "error",
        })
    }
}

/// The shape of an [`crate::Event`], for table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A request head ([`crate::Event::Request`]).
    RequestHead,
    /// A response head ([`crate::Event::Response`]).
    ResponseHead,
    /// Body bytes ([`crate::Event::Data`]).
    Data,
    /// End of the current message ([`crate::Event::EndOfMessage`]).
    EndOfMessage,
    /// Transport close ([`crate::Event::ConnectionClosed`]).
    ConnectionClosed,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventKind::RequestHead => "request",
            EventKind::ResponseHead => "response",
            EventKind::Data => "data",
            EventKind::EndOfMessage => "end-of-message",
            EventKind::ConnectionClosed => "connection-closed",
        })
    }
}

/// The transition table. `None` means the pair is illegal for that
/// role — e.g. a client sending a second `Request` from `Done`
/// (pipelining) or `Data` from `Idle` (body before head).
///
/// | role   | state     | event        | next      |
/// |--------|-----------|--------------|-----------|
/// | client | Idle      | RequestHead  | SendBody  |
/// | server | Idle      | ResponseHead | SendBody  |
/// | both   | SendBody  | Data         | SendBody  |
/// | both   | SendBody  | EndOfMessage | Done      |
/// | both   | Idle/Done/MustClose | ConnectionClosed | Closed |
/// | both   | anything else | —        | illegal   |
pub fn transition(role: Role, state: State, event: EventKind) -> Option<State> {
    match (role, state, event) {
        (Role::Client, State::Idle, EventKind::RequestHead) => Some(State::SendBody),
        (Role::Server, State::Idle, EventKind::ResponseHead) => Some(State::SendBody),
        (_, State::SendBody, EventKind::Data) => Some(State::SendBody),
        (_, State::SendBody, EventKind::EndOfMessage) => Some(State::Done),
        (_, State::Idle | State::Done | State::MustClose, EventKind::ConnectionClosed) => {
            Some(State::Closed)
        }
        // A close-delimited body is terminated *by* the close; the
        // connection layer synthesises the EndOfMessage, so the raw
        // pair is legal only for a sender in SendBody.
        (_, State::SendBody, EventKind::ConnectionClosed) => Some(State::Closed),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_accepts_the_happy_cycle() {
        let s = transition(Role::Client, State::Idle, EventKind::RequestHead).unwrap();
        assert_eq!(s, State::SendBody);
        let s = transition(Role::Client, s, EventKind::EndOfMessage).unwrap();
        assert_eq!(s, State::Done);
        let s = transition(Role::Client, s, EventKind::ConnectionClosed).unwrap();
        assert_eq!(s, State::Closed);
    }

    #[test]
    fn table_rejects_role_confusion_and_reordering() {
        // A server never sends a request head; a client never sends
        // a response head.
        assert!(transition(Role::Server, State::Idle, EventKind::RequestHead).is_none());
        assert!(transition(Role::Client, State::Idle, EventKind::ResponseHead).is_none());
        // Body bytes before any head.
        assert!(transition(Role::Client, State::Idle, EventKind::Data).is_none());
        // End-of-message from idle.
        assert!(transition(Role::Server, State::Idle, EventKind::EndOfMessage).is_none());
        // Nothing leaves Closed or Error.
        for ev in [
            EventKind::RequestHead,
            EventKind::ResponseHead,
            EventKind::Data,
            EventKind::EndOfMessage,
            EventKind::ConnectionClosed,
        ] {
            assert!(transition(Role::Client, State::Closed, ev).is_none());
            assert!(transition(Role::Client, State::Error, ev).is_none());
        }
    }

    #[test]
    fn done_accepts_only_close() {
        // In particular RequestHead from Done is illegal: that is
        // pipelining, refused at the connection layer with its own
        // error before the table is even consulted.
        assert!(transition(Role::Client, State::Done, EventKind::RequestHead).is_none());
        assert!(transition(Role::Client, State::Done, EventKind::Data).is_none());
        assert_eq!(
            transition(Role::Client, State::Done, EventKind::ConnectionClosed),
            Some(State::Closed)
        );
    }
}
