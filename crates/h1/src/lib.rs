//! `origin-h1` — a sans-IO HTTP/1.1 connection state machine.
//!
//! HTTP/2 gives the coalescing model streams; HTTP/1.1 gives it
//! nothing, so legacy sites in the mixed-protocol universe pay for
//! concurrency with *connections*. This crate models exactly the
//! part of HTTP/1.1 that matters for that accounting, in the h11
//! event/state/connection style:
//!
//! - **Typed events** ([`Event`]): request/response heads, body
//!   chunks, end-of-message, connection close. No bytes are read or
//!   written by the machine itself — callers feed events in and get
//!   wire bytes (for heads) out.
//! - **A role/state transition table** ([`state::transition`]):
//!   every `(role-local state, event)` pair either names the next
//!   state or is illegal, and illegal pairs are rejected with a
//!   typed error rather than silently tolerated.
//! - **Strict framing**: a message body is delimited by
//!   `Content-Length` or by connection close — nothing else.
//!   `Transfer-Encoding` is refused, body overruns and short bodies
//!   are errors, and a close-delimited response forbids keep-alive.
//! - **Keep-alive instead of streams**: one request/response cycle
//!   at a time ([`H1Error::Pipelining`] on attempts to send a second
//!   request before the cycle completes), with
//!   [`Connection::start_next_cycle`] re-arming an idle connection.
//!   Concurrency comes from the per-host connection cap
//!   ([`DEFAULT_MAX_CONNECTIONS_PER_HOST`]), enforced by the
//!   browser's pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod event;
pub mod state;

pub use conn::{Connection, H1Error};
pub use event::{Event, Framing, Request, Response};
pub use state::{EventKind, Role, State};

/// The classic browser cap on parallel HTTP/1.1 connections to one
/// host — the reason legacy sites domain-shard their assets. The
/// state machine owns one connection; the pool enforces the cap.
pub const DEFAULT_MAX_CONNECTIONS_PER_HOST: usize = 6;
