//! The connection layer: two role-local machines, strict framing,
//! keep-alive cycles, and wire encoding for message heads.

use crate::event::{Event, Framing, Request, Response};
use crate::state::{transition, EventKind, Role, State};
use std::fmt;

/// A protocol violation. Every error is terminal: the connection
/// moves to [`State::Error`] and refuses further events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H1Error {
    /// The `(role, state, event)` triple is not in the transition
    /// table.
    IllegalTransition {
        /// Role whose machine rejected the event.
        role: Role,
        /// State the machine was in.
        state: State,
        /// The offending event kind.
        event: EventKind,
    },
    /// A second request was sent before the current cycle finished.
    /// HTTP/1.1 pipelining is deliberately unsupported — real
    /// browsers shipped with it disabled, and the paper's connection
    /// accounting assumes one request in flight per connection.
    Pipelining,
    /// A response head was sent before any request head arrived.
    ResponseWithoutRequest,
    /// `Transfer-Encoding` framing is outside this machine's strict
    /// Content-Length / connection-close subset.
    UnsupportedTransferEncoding,
    /// `Content-Length` was present but not a decimal integer.
    BadContentLength(String),
    /// More body bytes than the framing allows.
    BodyOverrun {
        /// The framing in force.
        framing: Framing,
        /// Bytes that exceeded it.
        extra: u64,
    },
    /// `EndOfMessage` (or a transport close) arrived with
    /// Content-Length bytes still owed.
    ShortBody {
        /// Bytes still owed.
        remaining: u64,
    },
    /// `EndOfMessage` on a close-delimited body: only a transport
    /// close can end it.
    CloseDelimitedEnd,
    /// `start_next_cycle` on a connection that cannot be reused
    /// (keep-alive off, closed, or errored).
    NotKeptAlive,
    /// `start_next_cycle` before both sides reached `Done`.
    CycleIncomplete,
}

impl fmt::Display for H1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H1Error::IllegalTransition { role, state, event } => {
                write!(f, "illegal h1 transition: {event} in {role} state {state}")
            }
            H1Error::Pipelining => f.write_str("pipelining refused: cycle still in flight"),
            H1Error::ResponseWithoutRequest => f.write_str("response head before request head"),
            H1Error::UnsupportedTransferEncoding => {
                f.write_str("transfer-encoding framing unsupported (strict subset)")
            }
            H1Error::BadContentLength(v) => write!(f, "bad content-length: {v:?}"),
            H1Error::BodyOverrun { framing, extra } => {
                write!(f, "body overrun: {extra} bytes past {framing}")
            }
            H1Error::ShortBody { remaining } => {
                write!(f, "short body: {remaining} content-length bytes owed")
            }
            H1Error::CloseDelimitedEnd => {
                f.write_str("close-delimited body can only end with connection close")
            }
            H1Error::NotKeptAlive => f.write_str("connection not reusable"),
            H1Error::CycleIncomplete => f.write_str("cycle incomplete: both sides must be done"),
        }
    }
}

impl std::error::Error for H1Error {}

/// One HTTP/1.1 connection, seen from `role`'s side.
///
/// Tracks both role-local machines (ours and our model of the
/// peer's), the framing of the in-flight request and response, and
/// the keep-alive verdict for the current cycle.
#[derive(Debug, Clone)]
pub struct Connection {
    role: Role,
    client_state: State,
    server_state: State,
    req_framing: Framing,
    req_remaining: u64,
    resp_framing: Framing,
    resp_remaining: u64,
    keep_alive: bool,
    request_seen: bool,
    head_request: bool,
    cycles_completed: u64,
}

impl Connection {
    /// A fresh connection playing `role`.
    pub fn new(role: Role) -> Self {
        Connection {
            role,
            client_state: State::Idle,
            server_state: State::Idle,
            req_framing: Framing::NoBody,
            req_remaining: 0,
            resp_framing: Framing::NoBody,
            resp_remaining: 0,
            keep_alive: true,
            request_seen: false,
            head_request: false,
            cycles_completed: 0,
        }
    }

    /// Our role's current state.
    pub fn our_state(&self) -> State {
        self.state_of(self.role)
    }

    /// The peer role's current state.
    pub fn their_state(&self) -> State {
        self.state_of(self.role.peer())
    }

    /// Whether the connection may be reused after this cycle.
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// Completed request/response cycles so far.
    pub fn cycles_completed(&self) -> u64 {
        self.cycles_completed
    }

    /// Framing of the in-flight (or just-finished) response body.
    pub fn response_framing(&self) -> Framing {
        self.resp_framing
    }

    /// Process an event we send. Heads return their wire bytes;
    /// body/lifecycle events return `None` (the caller owns
    /// payloads — the machine only validates framing).
    pub fn send(&mut self, event: &Event) -> Result<Option<Vec<u8>>, H1Error> {
        let wire = match event {
            Event::Request(req) => Some(encode_request(req)),
            Event::Response(resp) => Some(encode_response(resp)),
            _ => None,
        };
        self.process(self.role, event)?;
        Ok(wire)
    }

    /// Process an event the peer sent.
    pub fn receive(&mut self, event: &Event) -> Result<(), H1Error> {
        self.process(self.role.peer(), event)
    }

    /// Re-arm an idle kept-alive connection for the next cycle.
    pub fn start_next_cycle(&mut self) -> Result<(), H1Error> {
        if self.client_state == State::Error
            || self.server_state == State::Error
            || self.client_state == State::Closed
            || self.server_state == State::Closed
            || self.client_state == State::MustClose
        {
            return Err(H1Error::NotKeptAlive);
        }
        if self.client_state != State::Done || self.server_state != State::Done {
            return Err(H1Error::CycleIncomplete);
        }
        debug_assert!(
            self.keep_alive,
            "done+done with keep-alive off is must-close"
        );
        self.client_state = State::Idle;
        self.server_state = State::Idle;
        self.req_framing = Framing::NoBody;
        self.req_remaining = 0;
        self.resp_framing = Framing::NoBody;
        self.resp_remaining = 0;
        self.request_seen = false;
        self.head_request = false;
        Ok(())
    }

    fn state_of(&self, role: Role) -> State {
        match role {
            Role::Client => self.client_state,
            Role::Server => self.server_state,
        }
    }

    fn set_state(&mut self, role: Role, state: State) {
        match role {
            Role::Client => self.client_state = state,
            Role::Server => self.server_state = state,
        }
    }

    fn fail(&mut self, err: H1Error) -> H1Error {
        self.client_state = State::Error;
        self.server_state = State::Error;
        err
    }

    /// The core: validate the event against `role`'s machine and the
    /// in-flight framing, then step the table.
    fn process(&mut self, role: Role, event: &Event) -> Result<(), H1Error> {
        let state = self.state_of(role);
        match event {
            Event::Request(req) => {
                if role != Role::Client {
                    return Err(self.fail(H1Error::IllegalTransition {
                        role,
                        state,
                        event: EventKind::RequestHead,
                    }));
                }
                // Pipelining gets its own diagnosis: the table would
                // reject Done/MustClose anyway, but "second request
                // while a cycle is in flight" is the interesting
                // refusal, not a generic illegal transition.
                if matches!(state, State::SendBody | State::Done | State::MustClose) {
                    return Err(self.fail(H1Error::Pipelining));
                }
                let framing = self.request_framing(req)?;
                self.step(role, state, EventKind::RequestHead)?;
                self.req_framing = framing;
                self.req_remaining = match framing {
                    Framing::ContentLength(n) => n,
                    _ => 0,
                };
                self.request_seen = true;
                self.head_request = req.method.eq_ignore_ascii_case("HEAD");
                if header_says_close(&req.headers) {
                    self.keep_alive = false;
                }
                Ok(())
            }
            Event::Response(resp) => {
                if role != Role::Server {
                    return Err(self.fail(H1Error::IllegalTransition {
                        role,
                        state,
                        event: EventKind::ResponseHead,
                    }));
                }
                if !self.request_seen {
                    return Err(self.fail(H1Error::ResponseWithoutRequest));
                }
                let framing = self.response_framing_of(resp)?;
                self.step(role, state, EventKind::ResponseHead)?;
                self.resp_framing = framing;
                self.resp_remaining = match framing {
                    Framing::ContentLength(n) => n,
                    _ => 0,
                };
                if matches!(framing, Framing::CloseDelimited) || header_says_close(&resp.headers) {
                    self.keep_alive = false;
                }
                Ok(())
            }
            Event::Data(n) => {
                self.step(role, state, EventKind::Data)?;
                let (framing, remaining) = self.framing_mut(role);
                match framing {
                    Framing::ContentLength(_) => {
                        if *n > *remaining {
                            let extra = *n - *remaining;
                            let f = *framing;
                            return Err(self.fail(H1Error::BodyOverrun { framing: f, extra }));
                        }
                        *remaining -= *n;
                    }
                    Framing::CloseDelimited => {}
                    Framing::NoBody => {
                        let f = *framing;
                        let extra = *n;
                        return Err(self.fail(H1Error::BodyOverrun { framing: f, extra }));
                    }
                }
                Ok(())
            }
            Event::EndOfMessage => {
                let (framing, remaining) = self.framing_mut(role);
                match framing {
                    Framing::ContentLength(_) if *remaining > 0 => {
                        let remaining = *remaining;
                        return Err(self.fail(H1Error::ShortBody { remaining }));
                    }
                    Framing::CloseDelimited => {
                        return Err(self.fail(H1Error::CloseDelimitedEnd));
                    }
                    _ => {}
                }
                self.step(role, state, EventKind::EndOfMessage)?;
                self.after_done();
                Ok(())
            }
            Event::ConnectionClosed => {
                // Transport-wide: both machines observe the close.
                // A close-delimited body in flight is *completed* by
                // the close; a Content-Length body in flight is
                // truncated by it.
                for r in [Role::Client, Role::Server] {
                    let s = self.state_of(r);
                    if s == State::SendBody {
                        let (framing, remaining) = self.framing_mut(r);
                        match framing {
                            Framing::ContentLength(_) if *remaining > 0 => {
                                let remaining = *remaining;
                                return Err(self.fail(H1Error::ShortBody { remaining }));
                            }
                            Framing::CloseDelimited => {
                                // Close ends the message cleanly.
                                self.set_state(r, State::Done);
                                self.after_done();
                            }
                            _ => {}
                        }
                    }
                }
                // The initiating side must itself be in a closeable
                // state; the peer follows the transport down.
                let state = self.state_of(role);
                self.step(role, state, EventKind::ConnectionClosed)?;
                self.client_state = State::Closed;
                self.server_state = State::Closed;
                self.keep_alive = false;
                Ok(())
            }
        }
    }

    fn step(&mut self, role: Role, state: State, event: EventKind) -> Result<(), H1Error> {
        match transition(role, state, event) {
            Some(next) => {
                self.set_state(role, next);
                Ok(())
            }
            None => Err(self.fail(H1Error::IllegalTransition { role, state, event })),
        }
    }

    /// When both sides reach `Done` the cycle is complete; with
    /// keep-alive off, both fall through to `MustClose`.
    fn after_done(&mut self) {
        if self.client_state == State::Done && self.server_state == State::Done {
            self.cycles_completed += 1;
            if !self.keep_alive {
                self.client_state = State::MustClose;
                self.server_state = State::MustClose;
            }
        }
    }

    fn framing_mut(&mut self, role: Role) -> (&mut Framing, &mut u64) {
        match role {
            Role::Client => (&mut self.req_framing, &mut self.req_remaining),
            Role::Server => (&mut self.resp_framing, &mut self.resp_remaining),
        }
    }

    fn request_framing(&mut self, req: &Request) -> Result<Framing, H1Error> {
        if req.header("transfer-encoding").is_some() {
            return Err(self.fail(H1Error::UnsupportedTransferEncoding));
        }
        match req.header("content-length") {
            Some(v) => match v.trim().parse::<u64>() {
                Ok(0) => Ok(Framing::NoBody),
                Ok(n) => Ok(Framing::ContentLength(n)),
                Err(_) => {
                    let v = v.to_string();
                    Err(self.fail(H1Error::BadContentLength(v)))
                }
            },
            // Requests have no close-delimited form: no length means
            // no body.
            None => Ok(Framing::NoBody),
        }
    }

    fn response_framing_of(&mut self, resp: &Response) -> Result<Framing, H1Error> {
        if resp.header("transfer-encoding").is_some() {
            return Err(self.fail(H1Error::UnsupportedTransferEncoding));
        }
        let bodyless_status =
            resp.status == 204 || resp.status == 304 || (100..200).contains(&resp.status);
        if self.head_request || bodyless_status {
            return Ok(Framing::NoBody);
        }
        match resp.header("content-length") {
            Some(v) => match v.trim().parse::<u64>() {
                Ok(0) => Ok(Framing::NoBody),
                Ok(n) => Ok(Framing::ContentLength(n)),
                Err(_) => {
                    let v = v.to_string();
                    Err(self.fail(H1Error::BadContentLength(v)))
                }
            },
            // No length, body-bearing status: the body runs to the
            // close of the connection.
            None => Ok(Framing::CloseDelimited),
        }
    }
}

fn header_says_close(headers: &[(String, String)]) -> bool {
    headers
        .iter()
        .any(|(n, v)| n.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close"))
}

fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + req.target.len());
    out.extend_from_slice(req.method.as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    for (name, value) in &req.headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out
}

fn encode_response(resp: &Response) -> Vec<u8> {
    let reason = match resp.status {
        200 => "OK",
        204 => "No Content",
        304 => "Not Modified",
        404 => "Not Found",
        421 => "Misdirected Request",
        _ => "",
    };
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(resp.status.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(reason.as_bytes());
    out.extend_from_slice(b"\r\n");
    for (name, value) in &resp.headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Connection {
        Connection::new(Role::Client)
    }

    /// Drive one full GET cycle with a Content-Length body.
    fn one_get_cycle(conn: &mut Connection, len: u64) {
        conn.send(&Event::Request(Request::get("/a.png", "site-000001.com")))
            .unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        conn.receive(&Event::Response(Response::with_content_length(len)))
            .unwrap();
        conn.receive(&Event::Data(len)).unwrap();
        conn.receive(&Event::EndOfMessage).unwrap();
    }

    #[test]
    fn content_length_cycle_keeps_alive_and_recycles() {
        let mut conn = client();
        one_get_cycle(&mut conn, 1024);
        assert_eq!(conn.our_state(), State::Done);
        assert_eq!(conn.their_state(), State::Done);
        assert!(conn.keep_alive());
        assert_eq!(conn.cycles_completed(), 1);

        conn.start_next_cycle().unwrap();
        assert_eq!(conn.our_state(), State::Idle);
        one_get_cycle(&mut conn, 64);
        assert_eq!(conn.cycles_completed(), 2);
    }

    #[test]
    fn pipelining_is_refused() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/one", "h")))
            .unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        // Response not yet complete — a second request is pipelining.
        let err = conn
            .send(&Event::Request(Request::get("/two", "h")))
            .unwrap_err();
        assert_eq!(err, H1Error::Pipelining);
        assert_eq!(conn.our_state(), State::Error);
    }

    #[test]
    fn second_request_mid_send_is_also_pipelining() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/one", "h")))
            .unwrap();
        let err = conn
            .send(&Event::Request(Request::get("/two", "h")))
            .unwrap_err();
        assert_eq!(err, H1Error::Pipelining);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        // Body bytes before any head.
        let mut conn = client();
        let err = conn.send(&Event::Data(10)).unwrap_err();
        assert!(matches!(err, H1Error::IllegalTransition { .. }));

        // Response before request.
        let mut conn = client();
        let err = conn
            .receive(&Event::Response(Response::with_content_length(1)))
            .unwrap_err();
        assert_eq!(err, H1Error::ResponseWithoutRequest);

        // Nothing is accepted after an error.
        let err = conn
            .send(&Event::Request(Request::get("/x", "h")))
            .unwrap_err();
        assert!(matches!(
            err,
            H1Error::IllegalTransition { .. } | H1Error::Pipelining
        ));
    }

    #[test]
    fn close_delimited_body_ends_on_close_only() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/page", "h")))
            .unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        conn.receive(&Event::Response(Response::close_delimited()))
            .unwrap();
        assert_eq!(conn.response_framing(), Framing::CloseDelimited);
        // A close-delimited response forbids keep-alive immediately.
        assert!(!conn.keep_alive());
        conn.receive(&Event::Data(4096)).unwrap();
        conn.receive(&Event::Data(4096)).unwrap();
        // EndOfMessage is illegal: only the close ends this body.
        let mut eom = conn.clone();
        assert_eq!(
            eom.receive(&Event::EndOfMessage).unwrap_err(),
            H1Error::CloseDelimitedEnd
        );
        // The close completes the message, then the connection.
        conn.receive(&Event::ConnectionClosed).unwrap();
        assert_eq!(conn.our_state(), State::Closed);
        assert_eq!(conn.cycles_completed(), 1);
        assert_eq!(conn.start_next_cycle().unwrap_err(), H1Error::NotKeptAlive);
    }

    #[test]
    fn no_length_no_close_header_is_still_close_delimited() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/p", "h"))).unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        conn.receive(&Event::Response(Response {
            status: 200,
            headers: vec![],
        }))
        .unwrap();
        assert_eq!(conn.response_framing(), Framing::CloseDelimited);
        assert!(!conn.keep_alive());
    }

    #[test]
    fn body_overrun_and_short_body_are_errors() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/a", "h"))).unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        conn.receive(&Event::Response(Response::with_content_length(100)))
            .unwrap();
        let mut over = conn.clone();
        assert!(matches!(
            over.receive(&Event::Data(101)).unwrap_err(),
            H1Error::BodyOverrun { extra: 1, .. }
        ));
        conn.receive(&Event::Data(40)).unwrap();
        assert_eq!(
            conn.receive(&Event::EndOfMessage).unwrap_err(),
            H1Error::ShortBody { remaining: 60 }
        );
    }

    #[test]
    fn close_truncating_a_content_length_body_is_an_error() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/a", "h"))).unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        conn.receive(&Event::Response(Response::with_content_length(100)))
            .unwrap();
        conn.receive(&Event::Data(40)).unwrap();
        assert_eq!(
            conn.receive(&Event::ConnectionClosed).unwrap_err(),
            H1Error::ShortBody { remaining: 60 }
        );
    }

    #[test]
    fn head_requests_and_bodyless_statuses_have_no_body() {
        let mut conn = client();
        let mut head = Request::get("/a", "h");
        head.method = "HEAD".to_string();
        conn.send(&Event::Request(head)).unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        // Even with a Content-Length header, a HEAD response carries
        // no body bytes.
        conn.receive(&Event::Response(Response::with_content_length(512)))
            .unwrap();
        assert_eq!(conn.response_framing(), Framing::NoBody);
        let mut with_data = conn.clone();
        assert!(matches!(
            with_data.receive(&Event::Data(1)).unwrap_err(),
            H1Error::BodyOverrun { .. }
        ));
        conn.receive(&Event::EndOfMessage).unwrap();
        assert_eq!(conn.cycles_completed(), 1);

        let mut conn = client();
        conn.send(&Event::Request(Request::get("/a", "h"))).unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        conn.receive(&Event::Response(Response {
            status: 304,
            headers: vec![],
        }))
        .unwrap();
        assert_eq!(conn.response_framing(), Framing::NoBody);
        // 304 without a length is NOT close-delimited: keep-alive
        // survives.
        conn.receive(&Event::EndOfMessage).unwrap();
        assert!(conn.keep_alive());
        conn.start_next_cycle().unwrap();
    }

    #[test]
    fn connection_close_header_parks_the_connection() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/a", "h"))).unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        conn.receive(&Event::Response(Response {
            status: 200,
            headers: vec![
                ("content-length".to_string(), "8".to_string()),
                ("connection".to_string(), "close".to_string()),
            ],
        }))
        .unwrap();
        conn.receive(&Event::Data(8)).unwrap();
        conn.receive(&Event::EndOfMessage).unwrap();
        assert_eq!(conn.our_state(), State::MustClose);
        assert_eq!(conn.start_next_cycle().unwrap_err(), H1Error::NotKeptAlive);
        conn.receive(&Event::ConnectionClosed).unwrap();
        assert_eq!(conn.our_state(), State::Closed);
    }

    #[test]
    fn transfer_encoding_is_refused() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/a", "h"))).unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        let err = conn
            .receive(&Event::Response(Response {
                status: 200,
                headers: vec![("transfer-encoding".to_string(), "chunked".to_string())],
            }))
            .unwrap_err();
        assert_eq!(err, H1Error::UnsupportedTransferEncoding);
    }

    #[test]
    fn request_head_wire_bytes() {
        let mut conn = client();
        let wire = conn
            .send(&Event::Request(Request::get(
                "/img/r4-0.png",
                "static.site-000001.com",
            )))
            .unwrap()
            .unwrap();
        assert_eq!(
            wire,
            b"GET /img/r4-0.png HTTP/1.1\r\nhost: static.site-000001.com\r\n\r\n"
        );
        // Body/lifecycle events carry no head bytes.
        assert_eq!(conn.send(&Event::EndOfMessage).unwrap(), None);
    }

    #[test]
    fn incomplete_cycle_cannot_be_recycled() {
        let mut conn = client();
        conn.send(&Event::Request(Request::get("/a", "h"))).unwrap();
        conn.send(&Event::EndOfMessage).unwrap();
        assert_eq!(
            conn.start_next_cycle().unwrap_err(),
            H1Error::CycleIncomplete
        );
    }
}
