//! HAR-style request timelines.
//!
//! Times are fractional milliseconds from navigation start, matching
//! the HTTP Archive format the paper's WebPageTest collection
//! produced. A [`RequestTiming`] carries the phase breakdown the §4.1
//! reconstruction edits; a [`PageLoad`] is one page's full record.

use crate::page::Protocol;
use origin_dns::DnsName;
use std::net::IpAddr;

/// The HAR phases of one request, as durations in milliseconds.
///
/// `dns`, `connect` and `ssl` are zero for requests that reused a
/// connection — exactly the phases the paper's model removes when a
/// request is coalescable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Phase {
    /// Queueing/blocked time before the request could be dispatched.
    pub blocked: f64,
    /// DNS resolution time (0 when cached or coalesced).
    pub dns: f64,
    /// TCP connect time (0 when reused).
    pub connect: f64,
    /// TLS handshake time (0 when reused).
    pub ssl: f64,
    /// Time writing the request.
    pub send: f64,
    /// Server think time to first byte.
    pub wait: f64,
    /// Body download time.
    pub receive: f64,
}

/// Quantise a millisecond value to integer microseconds — the same
/// rounding `origin_netsim::SimDuration::from_millis_f64` applies, so
/// HAR arithmetic and the loader's metrics path agree exactly.
pub fn ms_to_us(ms: f64) -> u64 {
    (ms.max(0.0) * 1_000.0).round() as u64
}

impl Phase {
    /// The phase durations quantised to integer microseconds, in HAR
    /// order (blocked, dns, connect, ssl, send, wait, receive).
    pub fn quantised_us(&self) -> [u64; 7] {
        [
            ms_to_us(self.blocked),
            ms_to_us(self.dns),
            ms_to_us(self.connect),
            ms_to_us(self.ssl),
            ms_to_us(self.send),
            ms_to_us(self.wait),
            ms_to_us(self.receive),
        ]
    }

    /// Total request duration in integer microseconds.
    pub fn total_us(&self) -> u64 {
        self.quantised_us().iter().sum()
    }

    /// Total request duration (ms). Accumulated as integer
    /// microseconds per phase, not naive f64 summation, so the value
    /// is associative and identical to what the metrics registry
    /// records for the same phases.
    pub fn total(&self) -> f64 {
        self.total_us() as f64 / 1_000.0
    }

    /// The setup cost a coalesced request avoids (dns+connect+ssl).
    pub fn setup(&self) -> f64 {
        self.dns + self.connect + self.ssl
    }
}

/// One request's record in a page load.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTiming {
    /// Index into the page's resource list.
    pub resource_index: usize,
    /// Hostname requested.
    pub host: DnsName,
    /// Destination IP the connection used.
    pub ip: IpAddr,
    /// Origin AS of the destination IP.
    pub asn: u32,
    /// Start time (ms from navigation start).
    pub start: f64,
    /// Phase durations.
    pub phase: Phase,
    /// Whether this request performed a DNS query on the network.
    pub did_dns: bool,
    /// Whether this request opened a new TCP+TLS connection (and so
    /// validated a certificate).
    pub new_connection: bool,
    /// Whether the request was coalesced onto an existing connection
    /// for a *different* hostname (connection reuse for the same
    /// hostname is ordinary keep-alive, not coalescing).
    pub coalesced: bool,
    /// Application protocol.
    pub protocol: Protocol,
    /// Issuer of the certificate validated on this connection (only
    /// set when `new_connection`).
    pub cert_issuer: Option<String>,
    /// Whether the request went over HTTPS.
    pub secure: bool,
    /// Extra connections opened by client races (happy-eyeballs
    /// duplicates, speculative pre-connects) attributed to this
    /// request — §4.2's "race conditions … make multiple connections
    /// for the same sets of resources".
    pub extra_connections: u8,
    /// Extra DNS queries from the same race behaviour.
    pub extra_dns: u8,
}

impl RequestTiming {
    /// Start time quantised to integer microseconds.
    pub fn start_us(&self) -> u64 {
        ms_to_us(self.start)
    }

    /// End time in integer microseconds (quantised start + quantised
    /// phase total).
    pub fn end_us(&self) -> u64 {
        self.start_us() + self.phase.total_us()
    }

    /// End time (ms), derived from the integer-microsecond form.
    pub fn end(&self) -> f64 {
        self.end_us() as f64 / 1_000.0
    }
}

/// One full page-load record: the HAR-equivalent for our model.
#[derive(Debug, Clone, PartialEq)]
pub struct PageLoad {
    /// Tranco rank of the page.
    pub rank: u32,
    /// Root hostname.
    pub root_host: DnsName,
    /// Per-request records in dispatch order.
    pub requests: Vec<RequestTiming>,
}

impl PageLoad {
    /// Page load time: the latest request end (ms).
    pub fn plt(&self) -> f64 {
        self.plt_us() as f64 / 1_000.0
    }

    /// Page load time in integer microseconds.
    pub fn plt_us(&self) -> u64 {
        self.requests.iter().map(|r| r.end_us()).max().unwrap_or(0)
    }

    /// Number of network DNS queries (including race duplicates).
    pub fn dns_queries(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.did_dns as u64 + r.extra_dns as u64)
            .sum()
    }

    /// Number of new TLS connections (= certificate validations),
    /// including race duplicates; plain-HTTP connections don't count.
    pub fn tls_connections(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| {
                if r.secure {
                    r.new_connection as u64 + r.extra_connections as u64
                } else {
                    0
                }
            })
            .sum()
    }

    /// Number of requests (including the root document).
    pub fn request_count(&self) -> u64 {
        self.requests.len() as u64
    }

    /// Distinct destination ASes touched (Figure 1's x-axis).
    pub fn distinct_ases(&self) -> u64 {
        let mut ases: Vec<u32> = self.requests.iter().map(|r| r.asn).collect();
        ases.sort_unstable();
        ases.dedup();
        ases.len() as u64
    }

    /// Requests that were coalesced onto a connection opened for a
    /// different hostname.
    pub fn coalesced_requests(&self) -> u64 {
        self.requests.iter().filter(|r| r.coalesced).count() as u64
    }

    /// New TLS connections made to a specific host (the §5 active
    /// measurement: "# new connections to subresource; 0 =
    /// coalescing").
    pub fn new_connections_to(&self, host: &DnsName) -> u64 {
        self.requests
            .iter()
            .filter(|r| &r.host == host)
            .map(|r| r.new_connection as u64 + r.extra_connections as u64)
            .sum()
    }

    /// Serialize to pretty JSON (HAR-adjacent export).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"rank\": {},\n", self.rank));
        out.push_str(&format!(
            "  \"root_host\": {},\n",
            json_str(self.root_host.as_str())
        ));
        out.push_str("  \"requests\": [");
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!(
                "      \"resource_index\": {},\n",
                r.resource_index
            ));
            out.push_str(&format!("      \"host\": {},\n", json_str(r.host.as_str())));
            out.push_str(&format!("      \"ip\": {},\n", json_str(&r.ip.to_string())));
            out.push_str(&format!("      \"asn\": {},\n", r.asn));
            out.push_str(&format!("      \"start\": {},\n", json_f64(r.start)));
            out.push_str(&format!(
                "      \"phase\": {{ \"blocked\": {}, \"dns\": {}, \"connect\": {}, \"ssl\": {}, \"send\": {}, \"wait\": {}, \"receive\": {} }},\n",
                json_f64(r.phase.blocked),
                json_f64(r.phase.dns),
                json_f64(r.phase.connect),
                json_f64(r.phase.ssl),
                json_f64(r.phase.send),
                json_f64(r.phase.wait),
                json_f64(r.phase.receive),
            ));
            out.push_str(&format!("      \"did_dns\": {},\n", r.did_dns));
            out.push_str(&format!(
                "      \"new_connection\": {},\n",
                r.new_connection
            ));
            out.push_str(&format!("      \"coalesced\": {},\n", r.coalesced));
            out.push_str(&format!(
                "      \"protocol\": {},\n",
                json_str(&format!("{:?}", r.protocol))
            ));
            out.push_str(&format!(
                "      \"cert_issuer\": {},\n",
                match &r.cert_issuer {
                    Some(s) => json_str(s),
                    None => "null".to_string(),
                }
            ));
            out.push_str(&format!("      \"secure\": {},\n", r.secure));
            out.push_str(&format!(
                "      \"extra_connections\": {},\n",
                r.extra_connections
            ));
            out.push_str(&format!("      \"extra_dns\": {}\n", r.extra_dns));
            out.push_str("    }");
        }
        if self.requests.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push('}');
        out
    }

    /// Serialize as a HAR 1.2 document (`log`/`pages`/`entries`), the
    /// format the paper's WebPageTest collection produced.
    ///
    /// Simulated time has no calendar, so `startedDateTime` values
    /// count from a fixed epoch chosen to match the paper's crawl
    /// window (Feb 2021). Phases that did not occur use HAR's `-1`
    /// convention; the applicable phases are the quantised
    /// integer-microsecond values, so each entry's `time` — and the
    /// page's `onLoad` — equals exactly what the metrics registry
    /// records.
    pub fn to_har_json(&self) -> String {
        let page_id = format!("page_{}", self.rank);
        let mut out = String::new();
        out.push_str("{\n  \"log\": {\n");
        out.push_str("    \"version\": \"1.2\",\n");
        out.push_str(
            "    \"creator\": { \"name\": \"respect-origin\", \"version\": \"0.1.0\" },\n",
        );
        out.push_str("    \"pages\": [\n      {\n");
        out.push_str(&format!(
            "        \"startedDateTime\": {},\n",
            json_str(&har_datetime(0))
        ));
        out.push_str(&format!("        \"id\": {},\n", json_str(&page_id)));
        out.push_str(&format!(
            "        \"title\": {},\n",
            json_str(&format!("https://{}/", self.root_host.as_str()))
        ));
        out.push_str(&format!(
            "        \"pageTimings\": {{ \"onContentLoad\": -1, \"onLoad\": {} }}\n",
            json_f64(self.plt())
        ));
        out.push_str("      }\n    ],\n");
        out.push_str("    \"entries\": [");
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let [blocked, dns, connect, ssl, send, wait, receive] = r.phase.quantised_us();
            let na = r.protocol == Protocol::NA;
            let timing = |applies: bool, us: u64| {
                if applies {
                    json_f64(us as f64 / 1_000.0)
                } else {
                    "-1".to_string()
                }
            };
            out.push_str("\n      {\n");
            out.push_str(&format!("        \"pageref\": {},\n", json_str(&page_id)));
            out.push_str(&format!(
                "        \"startedDateTime\": {},\n",
                json_str(&har_datetime(r.start_us()))
            ));
            out.push_str(&format!(
                "        \"time\": {},\n",
                json_f64(r.phase.total())
            ));
            out.push_str(&format!(
                "        \"request\": {{ \"method\": \"GET\", \"url\": {}, \"httpVersion\": {}, \"headers\": [], \"queryString\": [], \"cookies\": [], \"headersSize\": -1, \"bodySize\": -1 }},\n",
                json_str(&format!(
                    "{}://{}/r{}",
                    if r.secure { "https" } else { "http" },
                    r.host.as_str(),
                    r.resource_index
                )),
                json_str(har_http_version(r.protocol)),
            ));
            out.push_str(&format!(
                "        \"response\": {{ \"status\": {}, \"statusText\": {}, \"httpVersion\": {}, \"headers\": [], \"cookies\": [], \"content\": {{ \"size\": -1, \"mimeType\": \"\" }}, \"redirectURL\": \"\", \"headersSize\": -1, \"bodySize\": -1 }},\n",
                if na { 0 } else { 200 },
                json_str(if na { "" } else { "OK" }),
                json_str(har_http_version(r.protocol)),
            ));
            out.push_str("        \"cache\": {},\n");
            out.push_str(&format!(
                "        \"timings\": {{ \"blocked\": {}, \"dns\": {}, \"connect\": {}, \"ssl\": {}, \"send\": {}, \"wait\": {}, \"receive\": {} }},\n",
                timing(!na, blocked),
                timing(r.did_dns || dns > 0, dns),
                timing(r.new_connection, connect),
                timing(r.new_connection && r.secure, ssl),
                timing(!na, send),
                timing(!na, wait),
                timing(!na, receive),
            ));
            out.push_str(&format!(
                "        \"serverIPAddress\": {},\n",
                json_str(&r.ip.to_string())
            ));
            out.push_str(&format!("        \"_asn\": {},\n", r.asn));
            out.push_str(&format!("        \"_coalesced\": {}\n", r.coalesced));
            out.push_str("      }");
        }
        if self.requests.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n    ]\n");
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// ISO-8601 timestamp `us` microseconds after the fixed HAR epoch
/// (2021-02-01T00:00:00Z, the paper's crawl month). Millisecond
/// precision, as WebPageTest HARs carry.
fn har_datetime(us: u64) -> String {
    let total_ms = us / 1_000;
    let (ms, s, m) = (
        total_ms % 1_000,
        (total_ms / 1_000) % 60,
        (total_ms / 60_000) % 60,
    );
    let h = total_ms / 3_600_000;
    format!("2021-02-01T{h:02}:{m:02}:{s:02}.{ms:03}Z")
}

/// HAR `httpVersion` string for a protocol.
fn har_http_version(p: Protocol) -> &'static str {
    match p {
        Protocol::NA => "",
        p => p.label(),
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an f64 as JSON (shortest round-trip form; non-finite → null).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use std::net::Ipv4Addr;

    fn t(
        idx: usize,
        host: &str,
        start: f64,
        dns: f64,
        connect: f64,
        receive: f64,
        asn: u32,
    ) -> RequestTiming {
        RequestTiming {
            resource_index: idx,
            host: name(host),
            ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            asn,
            start,
            phase: Phase {
                blocked: 1.0,
                dns,
                connect,
                ssl: connect / 2.0,
                send: 0.5,
                wait: 20.0,
                receive,
            },
            did_dns: dns > 0.0,
            new_connection: connect > 0.0,
            coalesced: false,
            protocol: Protocol::H2,
            cert_issuer: None,
            secure: true,
            extra_connections: 0,
            extra_dns: 0,
        }
    }

    fn load() -> PageLoad {
        PageLoad {
            rank: 1,
            root_host: name("www.example.com"),
            requests: vec![
                t(0, "www.example.com", 0.0, 15.0, 40.0, 30.0, 100),
                t(1, "static.example.com", 90.0, 12.0, 40.0, 10.0, 100),
                t(2, "fonts.cdnhost.com", 95.0, 18.0, 40.0, 5.0, 200),
            ],
        }
    }

    #[test]
    fn phase_totals() {
        let p = Phase {
            blocked: 1.0,
            dns: 2.0,
            connect: 3.0,
            ssl: 4.0,
            send: 5.0,
            wait: 6.0,
            receive: 7.0,
        };
        assert_eq!(p.total(), 28.0);
        assert_eq!(p.setup(), 9.0);
    }

    #[test]
    fn plt_is_latest_end() {
        let l = load();
        let ends: Vec<f64> = l.requests.iter().map(|r| r.end()).collect();
        assert_eq!(l.plt(), ends.iter().cloned().fold(0.0, f64::max));
        assert!(l.plt() > 90.0);
    }

    #[test]
    fn counters() {
        let l = load();
        assert_eq!(l.dns_queries(), 3);
        assert_eq!(l.tls_connections(), 3);
        assert_eq!(l.request_count(), 3);
        assert_eq!(l.distinct_ases(), 2);
        assert_eq!(l.coalesced_requests(), 0);
        assert_eq!(l.new_connections_to(&name("fonts.cdnhost.com")), 1);
        assert_eq!(l.new_connections_to(&name("missing.example")), 0);
    }

    #[test]
    fn json_export_has_fields() {
        let j = load().to_json();
        assert!(j.contains("\"rank\""));
        assert!(j.contains("fonts.cdnhost.com"));
        assert!(j.contains("\"dns\""));
    }

    #[test]
    fn empty_page_plt_zero() {
        let l = PageLoad {
            rank: 1,
            root_host: name("a.com"),
            requests: vec![],
        };
        assert_eq!(l.plt(), 0.0);
        assert_eq!(l.distinct_ases(), 0);
    }

    #[test]
    fn phase_totals_quantise_to_integer_microseconds() {
        // 0.1 + 0.2 is the canonical float-accumulation trap: the
        // naive sum is 0.30000000000000004 ms. Quantised arithmetic
        // yields exactly 300 µs, matching the metrics path.
        let p = Phase {
            blocked: 0.1,
            send: 0.2,
            ..Default::default()
        };
        assert_eq!(p.total_us(), 300);
        assert_eq!(p.total(), 0.3);
        assert_eq!(p.quantised_us().iter().sum::<u64>(), p.total_us());
        // Sub-microsecond noise rounds away instead of accumulating.
        let tiny = Phase {
            wait: 0.0004,
            ..Default::default()
        };
        assert_eq!(tiny.total_us(), 0);
        assert_eq!(tiny.total(), 0.0);
    }

    #[test]
    fn request_end_uses_quantised_arithmetic() {
        let r = t(0, "a.com", 10.1, 0.2, 0.0, 0.0, 1);
        assert_eq!(r.start_us(), 10_100);
        assert_eq!(r.end_us(), r.start_us() + r.phase.total_us());
        assert_eq!(r.end(), r.end_us() as f64 / 1_000.0);
    }

    #[test]
    fn har_export_has_schema_keys() {
        let har = load().to_har_json();
        for key in [
            "\"log\"",
            "\"version\": \"1.2\"",
            "\"creator\"",
            "\"pages\"",
            "\"entries\"",
            "\"pageTimings\"",
            "\"startedDateTime\"",
            "\"pageref\"",
            "\"request\"",
            "\"response\"",
            "\"timings\"",
            "\"blocked\"",
            "\"dns\"",
            "\"connect\"",
            "\"ssl\"",
            "\"send\"",
            "\"wait\"",
            "\"receive\"",
            "\"serverIPAddress\"",
            "\"_coalesced\"",
        ] {
            assert!(har.contains(key), "HAR export missing {key}");
        }
    }

    #[test]
    fn har_onload_equals_last_request_end() {
        let l = load();
        let har = l.to_har_json();
        let last_end = l.requests.iter().map(|r| r.end()).fold(0.0, f64::max);
        assert_eq!(l.plt(), last_end);
        assert!(
            har.contains(&format!("\"onLoad\": {}", json_f64(l.plt()))),
            "onLoad must carry the PLT"
        );
        // Every entry's `time` is its quantised phase total.
        for r in &l.requests {
            assert!(har.contains(&format!("\"time\": {}", json_f64(r.phase.total()))));
        }
    }

    #[test]
    fn har_uses_minus_one_for_inapplicable_phases() {
        // A reused-connection request did no DNS, connect, or TLS.
        let mut reused = t(1, "b.com", 5.0, 0.0, 0.0, 3.0, 1);
        reused.did_dns = false;
        reused.new_connection = false;
        let l = PageLoad {
            rank: 9,
            root_host: name("b.com"),
            requests: vec![reused],
        };
        let har = l.to_har_json();
        assert!(har.contains("\"dns\": -1"), "dns must be -1 when skipped");
        assert!(har.contains("\"connect\": -1"));
        assert!(har.contains("\"ssl\": -1"));
        assert!(!har.contains("\"wait\": -1"), "wait always applies");
    }

    #[test]
    fn har_datetime_counts_from_fixed_epoch() {
        assert_eq!(har_datetime(0), "2021-02-01T00:00:00.000Z");
        assert_eq!(har_datetime(1_500), "2021-02-01T00:00:00.001Z");
        assert_eq!(har_datetime(61_000_000), "2021-02-01T00:01:01.000Z");
        assert_eq!(har_datetime(3_600_000_000), "2021-02-01T01:00:00.000Z");
    }
}
