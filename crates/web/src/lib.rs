//! Web page and resource modelling.
//!
//! The paper's unit of measurement is a *page load*: a root HTML
//! document plus the tree of subresources it pulls in, recorded as a
//! HAR file with per-request phase timings
//! (`blocked / dns / connect / ssl / send / wait / receive`). This
//! crate provides:
//!
//! - [`content`] — the content-type vocabulary of Tables 5 and 6.
//! - [`page`] — [`Page`]/[`Resource`]: the dependency-annotated
//!   resource tree a browser walks, including the CORS fetch modes
//!   (`crossorigin=anonymous`, XHR/fetch) that blocked coalescing in
//!   the paper's §5.3 deployment.
//! - [`har`] — HAR-style request timelines and page-level rollups
//!   (PLT, DNS/TLS counts), exportable as JSON.
//! - [`waterfall`] — text waterfall rendering (Figure 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod har;
pub mod page;
pub mod waterfall;

pub use content::ContentType;
pub use har::{PageLoad, Phase, RequestTiming};
pub use page::{FetchMode, Page, Protocol, Resource};
