//! Pages and their resource dependency trees.

use crate::content::ContentType;
use origin_dns::DnsName;

/// Application protocol a request was served over (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// HTTP/2.
    H2,
    /// HTTP/1.1.
    H11,
    /// HTTP/3 (pre-standard Google draft, "h3-Q050").
    H3Q050,
    /// QUIC (gQUIC).
    Quic,
    /// HTTP/1.0.
    H10,
    /// HTTP/0.9.
    H09,
    /// Protocol not recorded (failed/aborted requests).
    NA,
}

impl Protocol {
    /// Display string matching Table 3 rows.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::H2 => "HTTP/2",
            Protocol::H11 => "HTTP/1.1",
            Protocol::H3Q050 => "H3-Q050",
            Protocol::Quic => "QUIC",
            Protocol::H10 => "HTTP/1.0",
            Protocol::H09 => "HTTP/0.9",
            Protocol::NA => "N/A",
        }
    }

    /// Can connections carrying this protocol be coalesced at all?
    /// Only HTTP/2 supports coalescing + ORIGIN (§6.6: HTTP/3 has no
    /// ORIGIN standard yet).
    pub fn supports_coalescing(self) -> bool {
        matches!(self, Protocol::H2)
    }
}

/// How a subresource is fetched; decides CORS behaviour.
///
/// The paper found (§5.3) that subresources requested with
/// `crossorigin=anonymous` or via `XMLHttpRequest`/`fetch` did not
/// coalesce in Firefox, capping the measured reduction near 50%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchMode {
    /// Plain element fetch (img, script without crossorigin, link).
    Normal,
    /// CORS-anonymous fetch (fonts, `crossorigin=anonymous` scripts).
    CorsAnonymous,
    /// Programmatic XHR / `fetch()` request.
    XhrFetch,
}

impl FetchMode {
    /// Whether Firefox's implementation coalesces this fetch onto an
    /// ORIGIN-advertised connection (the §5.3 observation: anonymous
    /// and programmatic fetches use a separate, uncoalesced pool).
    pub fn firefox_coalescible(self) -> bool {
        matches!(self, FetchMode::Normal)
    }
}

/// One resource in a page: where it lives, what it is, and which
/// earlier resource discovered it.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Hostname serving the resource.
    pub host: DnsName,
    /// URL path.
    pub path: String,
    /// Content type.
    pub content_type: ContentType,
    /// Transfer size in bytes.
    pub size: u64,
    /// Index (into the page's resource list) of the resource whose
    /// parsing discovered this one; `None` for resources referenced
    /// directly by the root document. The root itself uses `None`.
    pub discovered_by: Option<usize>,
    /// Fetch mode (CORS behaviour).
    pub fetch_mode: FetchMode,
    /// Protocol the origin negotiates for this resource.
    pub protocol: Protocol,
    /// Whether the request is HTTPS (Table 3: 98.53% secure).
    pub secure: bool,
}

impl Resource {
    /// A plain HTTPS HTTP/2 resource. `path` accepts `&str` or an
    /// already-built `String` (moved, not re-allocated) — the webgen
    /// hot path formats each path once and hands it over.
    pub fn new(
        host: DnsName,
        path: impl Into<String>,
        content_type: ContentType,
        size: u64,
    ) -> Self {
        Resource {
            host,
            path: path.into(),
            content_type,
            size,
            discovered_by: None,
            fetch_mode: FetchMode::Normal,
            protocol: Protocol::H2,
            secure: true,
        }
    }

    /// Set the discovering parent.
    pub fn discovered_by(mut self, parent: usize) -> Self {
        self.discovered_by = Some(parent);
        self
    }

    /// Set the fetch mode.
    pub fn fetch_mode(mut self, mode: FetchMode) -> Self {
        self.fetch_mode = mode;
        self
    }

    /// Full URL string.
    pub fn url(&self) -> String {
        let scheme = if self.secure { "https" } else { "http" };
        format!("{scheme}://{}{}", self.host, self.path)
    }
}

/// A web page: the root document plus its subresources.
///
/// Resource 0 is always the root HTML document; `discovered_by`
/// indices form a forest rooted there (an index must be smaller than
/// the referring resource's own index, so iteration order is a valid
/// discovery order).
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// Tranco-style popularity rank (1 = most popular).
    pub rank: u32,
    /// The site's root document host.
    pub root_host: DnsName,
    /// Resources; index 0 is the root document.
    pub resources: Vec<Resource>,
    /// Whether this is a legacy (pre-h2) site: first-party assets
    /// are served over HTTP/1.1 from domain shards, and the loader
    /// drives the `origin-h1` state machine for them. Always `false`
    /// outside a mixed-protocol universe (`legacy_share > 0`), so
    /// the default universe is byte-identical with the flag ignored.
    pub legacy: bool,
    /// Whether this site's origins deploy HTTP/3: they advertise
    /// `alt-svc: h3`, and the loader upgrades eligible connections to
    /// QUIC once a certificate scope has been learned. Always `false`
    /// outside an h3 universe (`h3_share > 0`), so the default
    /// universe is byte-identical with the flag ignored.
    pub h3: bool,
}

impl Page {
    /// Create a page with its root document resource.
    pub fn new(rank: u32, root_host: DnsName, root_size: u64) -> Self {
        let root = Resource::new(root_host.clone(), "/", ContentType::Html, root_size);
        Page {
            rank,
            root_host,
            resources: vec![root],
            legacy: false,
            h3: false,
        }
    }

    /// Append a subresource; returns its index.
    ///
    /// # Panics
    /// Panics if `discovered_by` points at itself or a later index.
    pub fn push(&mut self, resource: Resource) -> usize {
        let idx = self.resources.len();
        if let Some(parent) = resource.discovered_by {
            assert!(
                parent < idx,
                "resource {idx} discovered by later resource {parent}"
            );
        }
        self.resources.push(resource);
        idx
    }

    /// Number of subresource requests (excludes the root document).
    pub fn subrequest_count(&self) -> usize {
        self.resources.len() - 1
    }

    /// Distinct hostnames across all resources.
    pub fn distinct_hosts(&self) -> Vec<&DnsName> {
        let mut hosts: Vec<&DnsName> = self.resources.iter().map(|r| &r.host).collect();
        hosts.sort();
        hosts.dedup();
        hosts
    }

    /// The children of resource `idx` in discovery order.
    pub fn children_of(&self, idx: usize) -> Vec<usize> {
        self.resources
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                *i != 0
                    && match r.discovered_by {
                        Some(p) => p == idx,
                        // Root-referenced resources are children of 0.
                        None => idx == 0 && *i != 0,
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Discovery depth of a resource (root = 0; root-referenced
    /// subresources = 1).
    pub fn depth_of(&self, idx: usize) -> usize {
        let mut depth = 0;
        let mut cursor = idx;
        while let Some(parent) = self.resources[cursor].discovered_by {
            depth += 1;
            cursor = parent;
            debug_assert!(depth <= self.resources.len(), "discovery cycle");
        }
        // The walk ends at the root (cursor 0) or at a root-referenced
        // resource whose implicit parent is the root document.
        if cursor != 0 {
            depth += 1;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;

    fn page() -> Page {
        let mut p = Page::new(1, name("www.example.com"), 14_000);
        let css = p.push(Resource::new(
            name("static.example.com"),
            "/css/style.css",
            ContentType::Css,
            12_000,
        ));
        p.push(
            Resource::new(
                name("fonts.cdnhost.com"),
                "/fonts/arial.woff",
                ContentType::Woff2,
                20_000,
            )
            .discovered_by(css)
            .fetch_mode(FetchMode::CorsAnonymous),
        );
        p.push(Resource::new(
            name("static.example.com"),
            "/js/jquery.js",
            ContentType::Javascript,
            30_000,
        ));
        p
    }

    #[test]
    fn root_is_resource_zero() {
        let p = page();
        assert_eq!(p.resources[0].content_type, ContentType::Html);
        assert_eq!(p.resources[0].path, "/");
        assert_eq!(p.subrequest_count(), 3);
    }

    #[test]
    fn distinct_hosts_deduped() {
        let p = page();
        let hosts = p.distinct_hosts();
        assert_eq!(hosts.len(), 3);
    }

    #[test]
    fn children_and_depth() {
        let p = page();
        // css (1) and jquery (3) are root-referenced; font (2) is a
        // child of css.
        assert_eq!(p.children_of(0), vec![1, 3]);
        assert_eq!(p.children_of(1), vec![2]);
        assert_eq!(p.depth_of(0), 0);
        assert_eq!(p.depth_of(1), 1);
        assert_eq!(p.depth_of(2), 2);
        assert_eq!(p.depth_of(3), 1);
    }

    #[test]
    #[should_panic(expected = "discovered by later")]
    fn forward_reference_panics() {
        let mut p = Page::new(1, name("a.com"), 1_000);
        p.push(Resource::new(name("b.com"), "/x", ContentType::Css, 10).discovered_by(5));
    }

    #[test]
    fn url_formatting() {
        let r = Resource::new(name("a.com"), "/x.js", ContentType::Javascript, 10);
        assert_eq!(r.url(), "https://a.com/x.js");
        let mut r2 = r.clone();
        r2.secure = false;
        assert_eq!(r2.url(), "http://a.com/x.js");
    }

    #[test]
    fn fetch_mode_coalescibility() {
        assert!(FetchMode::Normal.firefox_coalescible());
        assert!(!FetchMode::CorsAnonymous.firefox_coalescible());
        assert!(!FetchMode::XhrFetch.firefox_coalescible());
    }

    #[test]
    fn protocol_labels_and_coalescing() {
        assert_eq!(Protocol::H2.label(), "HTTP/2");
        assert_eq!(Protocol::H3Q050.label(), "H3-Q050");
        assert!(Protocol::H2.supports_coalescing());
        assert!(!Protocol::H11.supports_coalescing());
        assert!(!Protocol::H3Q050.supports_coalescing());
    }
}
