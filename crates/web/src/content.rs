//! Content types (the Table 5 vocabulary).

/// Subresource content types, covering the paper's Table 5 top-12
/// plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContentType {
    /// `application/javascript`.
    Javascript,
    /// `image/jpeg`.
    Jpeg,
    /// `image/png`.
    Png,
    /// `text/html`.
    Html,
    /// `image/gif`.
    Gif,
    /// `text/css`.
    Css,
    /// `text/javascript` (obsolete media type, §3.3 notes Google
    /// still serves it).
    TextJavascript,
    /// `application/json`.
    Json,
    /// `application/x-javascript` (another legacy JS type).
    XJavascript,
    /// `font/woff2`.
    Woff2,
    /// `image/webp`.
    Webp,
    /// `text/plain`.
    Plain,
    /// Everything else.
    Other,
}

impl ContentType {
    /// The MIME string, matching Table 5 rows.
    pub fn mime(self) -> &'static str {
        match self {
            ContentType::Javascript => "application/javascript",
            ContentType::Jpeg => "image/jpeg",
            ContentType::Png => "image/png",
            ContentType::Html => "text/html",
            ContentType::Gif => "image/gif",
            ContentType::Css => "text/css",
            ContentType::TextJavascript => "text/javascript",
            ContentType::Json => "application/json",
            ContentType::XJavascript => "application/x-javascript",
            ContentType::Woff2 => "font/woff2",
            ContentType::Webp => "image/webp",
            ContentType::Plain => "text/plain",
            ContentType::Other => "application/octet-stream",
        }
    }

    /// Is this type render-blocking when referenced from the document
    /// head (scripts and stylesheets block parsing; images don't)?
    pub fn is_render_blocking(self) -> bool {
        matches!(
            self,
            ContentType::Javascript
                | ContentType::TextJavascript
                | ContentType::XJavascript
                | ContentType::Css
        )
    }

    /// Is this a script type (any of the three JS MIME spellings)?
    pub fn is_script(self) -> bool {
        matches!(
            self,
            ContentType::Javascript | ContentType::TextJavascript | ContentType::XJavascript
        )
    }

    /// Is this a font type? Fonts are fetched CORS-anonymously per
    /// the CSS font-fetch rules — the §5.3 coalescing obstruction.
    pub fn is_font(self) -> bool {
        matches!(self, ContentType::Woff2)
    }

    /// Typical transfer size in bytes (median-ish, used by generators
    /// as the log-normal median).
    pub fn typical_size(self) -> u64 {
        match self {
            ContentType::Javascript | ContentType::TextJavascript | ContentType::XJavascript => {
                22_000
            }
            ContentType::Jpeg => 45_000,
            ContentType::Png => 18_000,
            ContentType::Html => 14_000,
            ContentType::Gif => 2_500,
            ContentType::Css => 12_000,
            ContentType::Json => 3_000,
            ContentType::Woff2 => 20_000,
            ContentType::Webp => 30_000,
            ContentType::Plain => 1_500,
            ContentType::Other => 8_000,
        }
    }

    /// The Table 5 top-12 in paper order (most- to least-requested).
    pub fn table5() -> &'static [ContentType] {
        &[
            ContentType::Javascript,
            ContentType::Jpeg,
            ContentType::Png,
            ContentType::Html,
            ContentType::Gif,
            ContentType::Css,
            ContentType::TextJavascript,
            ContentType::Json,
            ContentType::XJavascript,
            ContentType::Woff2,
            ContentType::Webp,
            ContentType::Plain,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mimes_match_table5() {
        assert_eq!(ContentType::Javascript.mime(), "application/javascript");
        assert_eq!(ContentType::TextJavascript.mime(), "text/javascript");
        assert_eq!(ContentType::Woff2.mime(), "font/woff2");
        assert_eq!(ContentType::table5().len(), 12);
    }

    #[test]
    fn blocking_classification() {
        assert!(ContentType::Javascript.is_render_blocking());
        assert!(ContentType::Css.is_render_blocking());
        assert!(!ContentType::Jpeg.is_render_blocking());
        assert!(!ContentType::Woff2.is_render_blocking());
    }

    #[test]
    fn script_and_font_helpers() {
        assert!(ContentType::XJavascript.is_script());
        assert!(!ContentType::Json.is_script());
        assert!(ContentType::Woff2.is_font());
        assert!(!ContentType::Css.is_font());
    }

    #[test]
    fn sizes_positive() {
        for ct in ContentType::table5() {
            assert!(ct.typical_size() > 0);
        }
    }
}
