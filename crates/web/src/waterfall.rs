//! Text waterfall rendering (Figure 2).
//!
//! Renders a [`PageLoad`] as an aligned ASCII waterfall so the
//! Figure 2 before/after comparison can be printed by the `repro`
//! harness and the `waterfall` example.

use crate::har::PageLoad;

/// Glyphs used for the phase bars.
const GLYPH_BLOCKED: char = '░';
const GLYPH_DNS: char = 'D';
const GLYPH_CONNECT: char = 'C';
const GLYPH_SEND_WAIT: char = '▒';
const GLYPH_RECEIVE: char = '█';

/// Render a waterfall, `width` columns for the time axis.
pub fn render(load: &PageLoad, width: usize) -> String {
    let plt = load.plt().max(1.0);
    let scale = width as f64 / plt;
    let label_w = load
        .requests
        .iter()
        .map(|r| r.host.as_str().len())
        .max()
        .unwrap_or(0)
        .max(8);
    let mut out = String::new();
    out.push_str(&format!(
        "{:label_w$}  0ms{:>pad$}\n",
        "host",
        format!("{:.0}ms", plt),
        pad = width
    ));
    for r in &load.requests {
        let mut bar = String::new();
        let col = |ms: f64| (ms * scale).round() as usize;
        let start = col(r.start);
        bar.extend(std::iter::repeat_n(' ', start));
        let mut push_seg = |dur: f64, glyph: char| {
            let n = col(dur).max(if dur > 0.0 { 1 } else { 0 });
            bar.extend(std::iter::repeat_n(glyph, n));
        };
        push_seg(r.phase.blocked, GLYPH_BLOCKED);
        push_seg(r.phase.dns, GLYPH_DNS);
        push_seg(r.phase.connect + r.phase.ssl, GLYPH_CONNECT);
        push_seg(r.phase.send + r.phase.wait, GLYPH_SEND_WAIT);
        push_seg(r.phase.receive, GLYPH_RECEIVE);
        let marker = if r.coalesced {
            " (coalesced)"
        } else if r.new_connection {
            ""
        } else {
            " (reused)"
        };
        out.push_str(&format!("{:label_w$}  {bar}{marker}\n", r.host.as_str()));
    }
    out.push_str(&format!(
        "PLT {:.1}ms | {} requests | {} DNS | {} TLS | {} coalesced\n",
        load.plt(),
        load.request_count(),
        load.dns_queries(),
        load.tls_connections(),
        load.coalesced_requests()
    ));
    out
}

/// Render two waterfalls (measured vs reconstructed) side by side
/// vertically, with a delta line — the Figure 2 presentation.
pub fn render_comparison(before: &PageLoad, after: &PageLoad, width: usize) -> String {
    let mut out = String::new();
    out.push_str("== measured ==\n");
    out.push_str(&render(before, width));
    out.push_str("\n== reconstructed (coalesced) ==\n");
    out.push_str(&render(after, width));
    let saved = before.plt() - after.plt();
    out.push_str(&format!(
        "\ntime saved: {saved:.1}ms ({:.1}%)\n",
        saved / before.plt().max(1.0) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::har::{Phase, RequestTiming};
    use crate::page::Protocol;
    use origin_dns::name::name;
    use std::net::{IpAddr, Ipv4Addr};

    fn load() -> PageLoad {
        PageLoad {
            rank: 1,
            root_host: name("www.example.com"),
            requests: vec![
                RequestTiming {
                    resource_index: 0,
                    host: name("www.example.com"),
                    ip: IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1)),
                    asn: 13335,
                    start: 0.0,
                    phase: Phase {
                        dns: 15.0,
                        connect: 20.0,
                        ssl: 20.0,
                        wait: 30.0,
                        receive: 15.0,
                        ..Default::default()
                    },
                    did_dns: true,
                    new_connection: true,
                    coalesced: false,
                    protocol: Protocol::H2,
                    cert_issuer: None,
                    secure: true,
                    extra_connections: 0,
                    extra_dns: 0,
                },
                RequestTiming {
                    resource_index: 1,
                    host: name("static.example.com"),
                    ip: IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1)),
                    asn: 13335,
                    start: 100.0,
                    phase: Phase {
                        wait: 20.0,
                        receive: 10.0,
                        ..Default::default()
                    },
                    did_dns: false,
                    new_connection: false,
                    coalesced: true,
                    protocol: Protocol::H2,
                    cert_issuer: None,
                    secure: true,
                    extra_connections: 0,
                    extra_dns: 0,
                },
            ],
        }
    }

    #[test]
    fn render_contains_hosts_and_summary() {
        let r = render(&load(), 60);
        assert!(r.contains("www.example.com"));
        assert!(r.contains("static.example.com"));
        assert!(r.contains("(coalesced)"));
        assert!(r.contains("PLT"));
        assert!(r.contains('D'), "dns glyph present");
        assert!(r.contains('C'), "connect glyph present");
    }

    #[test]
    fn comparison_reports_savings() {
        let before = load();
        let mut after = load();
        after.requests[1].start = 60.0;
        let r = render_comparison(&before, &after, 40);
        assert!(r.contains("time saved"));
        assert!(r.contains("measured"));
        assert!(r.contains("reconstructed"));
    }

    #[test]
    fn empty_load_renders() {
        let l = PageLoad {
            rank: 1,
            root_host: name("a.com"),
            requests: vec![],
        };
        let r = render(&l, 40);
        assert!(r.contains("PLT 0.0ms"));
    }

    /// A request with round-number phases so golden columns are exact.
    fn golden_req(
        idx: usize,
        host: &str,
        start: f64,
        phase: Phase,
        new_connection: bool,
        coalesced: bool,
    ) -> RequestTiming {
        RequestTiming {
            resource_index: idx,
            host: name(host),
            ip: IpAddr::V4(Ipv4Addr::new(1, 1, 1, 1)),
            asn: 1,
            start,
            phase,
            did_dns: phase.dns > 0.0,
            new_connection,
            coalesced,
            protocol: Protocol::H2,
            cert_issuer: None,
            secure: true,
            extra_connections: 0,
            extra_dns: 0,
        }
    }

    /// Before: both requests pay full setup. PLT 60ms.
    fn golden_before() -> PageLoad {
        PageLoad {
            rank: 1,
            root_host: name("a.com"),
            requests: vec![
                golden_req(
                    0,
                    "a.com",
                    0.0,
                    Phase {
                        dns: 10.0,
                        connect: 10.0,
                        ssl: 10.0,
                        wait: 10.0,
                        receive: 10.0,
                        ..Default::default()
                    },
                    true,
                    false,
                ),
                golden_req(
                    1,
                    "b.com",
                    25.0,
                    Phase {
                        dns: 5.0,
                        connect: 10.0,
                        ssl: 5.0,
                        wait: 10.0,
                        receive: 5.0,
                        ..Default::default()
                    },
                    true,
                    false,
                ),
            ],
        }
    }

    /// After: the second request coalesces, dropping its setup. PLT 50ms.
    fn golden_after() -> PageLoad {
        let mut l = golden_before();
        l.requests[1] = golden_req(
            1,
            "b.com",
            25.0,
            Phase {
                wait: 10.0,
                receive: 5.0,
                ..Default::default()
            },
            false,
            true,
        );
        l
    }

    #[test]
    fn render_matches_golden_fixture() {
        // Width 60 on a 60 ms page: one column per millisecond.
        let mut want = String::new();
        want.push_str("host      0ms");
        want.push_str(&" ".repeat(56));
        want.push_str("60ms\n");
        want.push_str("a.com     ");
        want.push_str(&"D".repeat(10));
        want.push_str(&"C".repeat(20));
        want.push_str(&"▒".repeat(10));
        want.push_str(&"█".repeat(10));
        want.push('\n');
        want.push_str("b.com     ");
        want.push_str(&" ".repeat(25));
        want.push_str(&"D".repeat(5));
        want.push_str(&"C".repeat(15));
        want.push_str(&"▒".repeat(10));
        want.push_str(&"█".repeat(5));
        want.push('\n');
        want.push_str("PLT 60.0ms | 2 requests | 2 DNS | 2 TLS | 0 coalesced\n");
        assert_eq!(render(&golden_before(), 60), want);
    }

    #[test]
    fn render_coalesced_matches_golden_fixture() {
        // Width 60 on a 50 ms page: 1.2 columns per millisecond, still
        // integral for every round-number boundary in the fixture.
        let mut want = String::new();
        want.push_str("host      0ms");
        want.push_str(&" ".repeat(56));
        want.push_str("50ms\n");
        want.push_str("a.com     ");
        want.push_str(&"D".repeat(12));
        want.push_str(&"C".repeat(24));
        want.push_str(&"▒".repeat(12));
        want.push_str(&"█".repeat(12));
        want.push('\n');
        want.push_str("b.com     ");
        want.push_str(&" ".repeat(30));
        want.push_str(&"▒".repeat(12));
        want.push_str(&"█".repeat(6));
        want.push_str(" (coalesced)\n");
        want.push_str("PLT 50.0ms | 2 requests | 1 DNS | 1 TLS | 1 coalesced\n");
        assert_eq!(render(&golden_after(), 60), want);
    }

    #[test]
    fn render_comparison_matches_golden_fixture() {
        let got = render_comparison(&golden_before(), &golden_after(), 60);
        let mut want = String::from("== measured ==\n");
        want.push_str(&render(&golden_before(), 60));
        want.push_str("\n== reconstructed (coalesced) ==\n");
        want.push_str(&render(&golden_after(), 60));
        want.push_str("\ntime saved: 10.0ms (16.7%)\n");
        assert_eq!(got, want);
    }
}
