//! Integer-valued frequency distributions.

use std::collections::BTreeMap;

/// A frequency distribution over integer values.
///
/// Used for Figure 1's bar series (number of unique ASes contacted per
/// page) and Table 8 (distribution of SAN-entry counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a sample iterator.
    #[allow(clippy::should_implement_trait)] // inherent constructor used as Histogram::from_iter
    pub fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Self::new();
        for x in iter {
            h.add(x);
        }
        h
    }

    /// Record one observation of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `n` observations of `value`.
    pub fn add_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Fraction of observations equal to `value` (0.0 when empty).
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// `(value, count)` pairs in ascending value order.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// `(value, count)` pairs sorted by descending count; ties broken
    /// by ascending value. This is Table 8's "rank by count" ordering.
    pub fn ranked(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.bins().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Fraction of observations with value ≤ `x` — the histogram's CDF.
    pub fn cdf_at(&self, x: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cum: u64 = self.counts.range(..=x).map(|(_, &c)| c).sum();
        cum as f64 / self.total as f64
    }

    /// The smallest value `v` with CDF(v) ≥ q, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let threshold = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (&v, &c) in &self.counts {
            cum += c;
            if cum >= threshold {
                return Some(v);
            }
        }
        self.counts.keys().next_back().copied()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.bins() {
            self.add_n(v, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.fraction(3), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.cdf_at(10), 0.0);
    }

    #[test]
    fn add_and_count() {
        let h = Histogram::from_iter([2, 2, 5]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(5), 1);
        assert!((h.fraction(2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_quantile() {
        let h = Histogram::from_iter([1, 2, 3, 4]);
        assert_eq!(h.cdf_at(2), 0.5);
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.75), Some(3));
        assert_eq!(h.quantile(1.0), Some(4));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn ranked_order() {
        let h = Histogram::from_iter([7, 7, 7, 3, 3, 9]);
        assert_eq!(h.ranked(), vec![(7, 3), (3, 2), (9, 1)]);
    }

    #[test]
    fn ranked_tie_breaks_ascending_value() {
        let h = Histogram::from_iter([4, 4, 2, 2]);
        assert_eq!(h.ranked(), vec![(2, 2), (4, 2)]);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Histogram::from_iter([1, 2]);
        let b = Histogram::from_iter([2, 3]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
    }

    #[test]
    fn add_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.add_n(5, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(5), 0);
    }
}
