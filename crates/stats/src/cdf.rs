//! Empirical CDFs for the paper's figure series.

use crate::quantile_sorted;

/// An empirical cumulative distribution function.
///
/// Stores the sorted sample set; evaluation is a binary search. Used
/// to regenerate Figure 1 (unique ASes per page), Figure 3 (DNS/TLS
/// counts), Figure 4 (SAN sizes), Figure 7 (new connections) and
/// Figure 9 (page load times).
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from samples. Panics on NaN samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        Cdf { sorted }
    }

    /// Build a CDF from integer samples.
    pub fn from_u64(samples: &[u64]) -> Self {
        Self::from_samples(&samples.iter().map(|&x| x as f64).collect::<Vec<_>>())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x): fraction of samples less than or equal to `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point returns the count of samples <= x because the
        // predicate holds for the sorted prefix of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the q-quantile of the samples.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        Some(quantile_sorted(&self.sorted, q))
    }

    /// Median convenience accessor.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Sample the CDF at each value of `xs`, returning `(x, P(X ≤ x))`
    /// pairs — the series a plotting frontend would draw.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// Step-function points of the full empirical CDF: one `(x, p)`
    /// pair per distinct sample value.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n as f64));
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let c = Cdf::from_samples(&[]);
        assert!(c.is_empty());
        assert_eq!(c.eval(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }

    #[test]
    fn eval_step_boundaries() {
        let c = Cdf::from_u64(&[1, 2, 2, 3]);
        assert_eq!(c.eval(0.0), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(1.5), 0.25);
        assert_eq!(c.eval(2.0), 0.75);
        assert_eq!(c.eval(3.0), 1.0);
        assert_eq!(c.eval(99.0), 1.0);
    }

    #[test]
    fn median_matches_quantile() {
        let c = Cdf::from_u64(&[10, 20, 30]);
        assert_eq!(c.median(), Some(20.0));
    }

    #[test]
    fn steps_deduplicate() {
        let c = Cdf::from_u64(&[5, 5, 7]);
        assert_eq!(c.steps(), vec![(5.0, 2.0 / 3.0), (7.0, 1.0)]);
    }

    #[test]
    fn series_matches_eval() {
        let c = Cdf::from_u64(&[1, 2, 3, 4]);
        let s = c.series(&[0.5, 2.5, 4.0]);
        assert_eq!(s, vec![(0.5, 0.0), (2.5, 0.5), (4.0, 1.0)]);
    }

    #[test]
    fn monotone_nondecreasing() {
        let c = Cdf::from_u64(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let mut last = 0.0;
        for x in 0..10 {
            let p = c.eval(x as f64);
            assert!(p >= last, "CDF must be non-decreasing");
            last = p;
        }
    }
}
