//! Bucketed time series for longitudinal plots (Figure 8).

/// A time series of event counts bucketed into fixed-width windows.
///
/// Figure 8 plots new-TLS-connections-per-second for control and
/// experiment groups over a two-week deployment; this type accumulates
/// raw event timestamps and reports per-bucket rates.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Bucket width in the same unit as the timestamps (e.g. seconds).
    bucket_width: f64,
    /// Count of events per bucket, indexed by bucket number.
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// Create a series covering `[0, horizon)` with `bucket_width`
    /// buckets. Panics if `bucket_width <= 0` or `horizon <= 0`.
    pub fn new(horizon: f64, bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(horizon > 0.0, "horizon must be positive");
        let n = (horizon / bucket_width).ceil() as usize;
        TimeSeries {
            bucket_width,
            buckets: vec![0; n],
        }
    }

    /// Record one event at time `t`. Events outside `[0, horizon)` are
    /// ignored (the passive pipeline logs outside the study window are
    /// dropped the same way).
    pub fn record(&mut self, t: f64) {
        if t < 0.0 {
            return;
        }
        let idx = (t / self.bucket_width) as usize;
        if let Some(b) = self.buckets.get_mut(idx) {
            *b += 1;
        }
    }

    /// Record `n` events at time `t`.
    pub fn record_n(&mut self, t: f64, n: u64) {
        if t < 0.0 {
            return;
        }
        let idx = (t / self.bucket_width) as usize;
        if let Some(b) = self.buckets.get_mut(idx) {
            *b += n;
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when the series has no buckets.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `(bucket_start_time, rate_per_unit)` pairs: the series Figure 8
    /// draws. Rate is events in the bucket divided by bucket width.
    pub fn rates(&self) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 * self.bucket_width, c as f64 / self.bucket_width))
            .collect()
    }

    /// Raw per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Mean rate over a bucket index range `[start, end)` — used to
    /// compare experiment vs control over the deployment window only.
    pub fn mean_rate(&self, start: usize, end: usize) -> f64 {
        let end = end.min(self.buckets.len());
        if start >= end {
            return 0.0;
        }
        let sum: u64 = self.buckets[start..end].iter().sum();
        sum as f64 / ((end - start) as f64 * self.bucket_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_rounds_up() {
        let s = TimeSeries::new(10.0, 3.0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn record_places_events() {
        let mut s = TimeSeries::new(10.0, 1.0);
        s.record(0.0);
        s.record(0.5);
        s.record(9.9);
        assert_eq!(s.counts()[0], 2);
        assert_eq!(s.counts()[9], 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut s = TimeSeries::new(10.0, 1.0);
        s.record(-1.0);
        s.record(10.0);
        s.record(100.0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn rates_divide_by_width() {
        let mut s = TimeSeries::new(4.0, 2.0);
        s.record_n(0.0, 4);
        let r = s.rates();
        assert_eq!(r[0], (0.0, 2.0));
        assert_eq!(r[1], (2.0, 0.0));
    }

    #[test]
    fn mean_rate_over_window() {
        let mut s = TimeSeries::new(4.0, 1.0);
        s.record_n(0.0, 2);
        s.record_n(1.0, 4);
        assert_eq!(s.mean_rate(0, 2), 3.0);
        assert_eq!(s.mean_rate(2, 4), 0.0);
        assert_eq!(s.mean_rate(3, 3), 0.0);
        // end clamped to len
        assert_eq!(s.mean_rate(0, 100), 1.5);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        TimeSeries::new(1.0, 0.0);
    }
}
