//! Plain-text table rendering for the `repro` binary.
//!
//! The paper's evaluation is presented as numbered tables; the
//! regeneration harness prints the same rows through this renderer so
//! output can be compared side-by-side with the paper.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows are allowed and widen the table.
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table to a string with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                let pad = width.saturating_sub(cell.chars().count());
                if i + 1 < ncols {
                    line.extend(std::iter::repeat_n(' ', pad));
                }
            }
            line
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let total_width: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push('\n');
            out.extend(std::iter::repeat_n('-', total_width));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percent string with two decimals, paper-style
/// (`13.75`).
pub fn pct(fraction: f64) -> String {
    format!("{:.2}", fraction * 100.0)
}

/// Format a signed percent-change, paper-style (`+80.84%` / `-26.86%`).
pub fn pct_change(change: f64) -> String {
    format!("{:+.2}%", change)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["Name", "#"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "100"]);
        let r = t.render();
        assert!(r.starts_with("Demo\n"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1], "Name   #");
        assert_eq!(lines[3], "alpha  1");
        assert_eq!(lines[4], "b      100");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new("", &["A", "B", "C"]);
        t.row(&["x"]);
        let r = t.render();
        assert!(r.contains('x'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1375), "13.75");
        assert_eq!(pct_change(80.84), "+80.84%");
        assert_eq!(pct_change(-26.86), "-26.86%");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new("t", &[]);
        assert!(t.is_empty());
        assert_eq!(t.render(), "t\n");
    }
}
