//! Top-k counters for the paper's breakdown tables.

use std::collections::HashMap;
use std::hash::Hash;

/// One row of a top-k breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct TopEntry<K> {
    /// The counted key (AS, hostname, issuer, content type, …).
    pub key: K,
    /// Number of observations.
    pub count: u64,
    /// Share of all observations, in percent.
    pub percent: f64,
}

/// Counts occurrences of keys and reports the most frequent ones with
/// their share of the total — the shape of Tables 2, 4, 5, 6, 7 and 9.
#[derive(Debug, Clone)]
pub struct TopK<K: Eq + Hash> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash + Clone + Ord> TopK<K> {
    /// New empty counter.
    pub fn new() -> Self {
        TopK {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Count one observation of `key`.
    pub fn add(&mut self, key: K) {
        self.add_n(key, 1);
    }

    /// Count `n` observations of `key`.
    pub fn add_n(&mut self, key: K, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Fold another counter into this one. Addition is commutative and
    /// associative, so any merge order yields the same counter — which
    /// is what keeps sharded crawls bit-identical to sequential ones.
    pub fn merge(&mut self, other: &TopK<K>) {
        for (key, &n) in &other.counts {
            self.add_n(key.clone(), n);
        }
    }

    /// Total observations across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count for one key.
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// The `k` most frequent keys, descending by count (ties broken by
    /// ascending key for determinism), with percentages of the total.
    pub fn top(&self, k: usize) -> Vec<TopEntry<K>> {
        let mut entries: Vec<(&K, &u64)> = self.counts.iter().collect();
        entries.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        entries
            .into_iter()
            .take(k)
            .map(|(key, &count)| TopEntry {
                key: key.clone(),
                count,
                percent: if self.total == 0 {
                    0.0
                } else {
                    count as f64 / self.total as f64 * 100.0
                },
            })
            .collect()
    }

    /// Cumulative share (percent) held by the top `k` keys — e.g. the
    /// paper's "the top-10 ASes service more than 60% of requests".
    pub fn top_share(&self, k: usize) -> f64 {
        self.top(k).iter().map(|e| e.percent).sum()
    }

    /// The smallest number of keys whose cumulative share reaches
    /// `target_percent` — e.g. "it takes 51 ASes to service 80% of the
    /// requests". Returns `None` when the total share never reaches the
    /// target.
    pub fn keys_to_reach(&self, target_percent: f64) -> Option<usize> {
        let all = self.top(self.counts.len());
        let mut cum = 0.0;
        for (i, e) in all.iter().enumerate() {
            cum += e.percent;
            if cum >= target_percent {
                return Some(i + 1);
            }
        }
        None
    }
}

impl<K: Eq + Hash + Clone + Ord> Default for TopK<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone + Ord> FromIterator<K> for TopK<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut t = TopK::new();
        for k in iter {
            t.add(k);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let t: TopK<&str> = TopK::new();
        assert_eq!(t.total(), 0);
        assert!(t.top(5).is_empty());
        assert_eq!(t.keys_to_reach(50.0), None);
    }

    #[test]
    fn counting_and_percent() {
        let t: TopK<&str> = ["a", "a", "a", "b"].into_iter().collect();
        let top = t.top(2);
        assert_eq!(top[0].key, "a");
        assert_eq!(top[0].count, 3);
        assert_eq!(top[0].percent, 75.0);
        assert_eq!(top[1].key, "b");
        assert_eq!(top[1].percent, 25.0);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let t: TopK<&str> = ["b", "a"].into_iter().collect();
        let top = t.top(2);
        assert_eq!(top[0].key, "a");
        assert_eq!(top[1].key, "b");
    }

    #[test]
    fn top_share_and_keys_to_reach() {
        let mut t: TopK<u32> = TopK::new();
        t.add_n(1, 50);
        t.add_n(2, 30);
        t.add_n(3, 20);
        assert_eq!(t.top_share(1), 50.0);
        assert_eq!(t.top_share(2), 80.0);
        assert_eq!(t.keys_to_reach(80.0), Some(2));
        assert_eq!(t.keys_to_reach(81.0), Some(3));
        assert_eq!(t.keys_to_reach(100.0), Some(3));
        assert_eq!(t.keys_to_reach(101.0), None);
    }

    #[test]
    fn top_truncates() {
        let t: TopK<u32> = (0..10).collect();
        assert_eq!(t.top(3).len(), 3);
        assert_eq!(t.distinct(), 10);
    }

    #[test]
    fn merge_identity_and_associativity() {
        let a: TopK<&str> = ["a", "a", "b"].into_iter().collect();
        let b: TopK<&str> = ["b", "c"].into_iter().collect();
        let c: TopK<&str> = ["c", "c", "d"].into_iter().collect();
        // empty ⊕ x == x and x ⊕ empty == x.
        let mut left = TopK::new();
        left.merge(&a);
        assert_eq!(left.top(10), a.top(10));
        let mut right = a.clone();
        right.merge(&TopK::new());
        assert_eq!(right.top(10), a.top(10));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.top(10), a_bc.top(10));
        assert_eq!(ab_c.total(), 8);
    }

    #[test]
    fn add_n_zero_is_noop() {
        let mut t: TopK<&str> = TopK::new();
        t.add_n("x", 0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.distinct(), 0);
    }
}
