//! Top-k counters for the paper's breakdown tables.

use origin_intern::FxHashMap;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::hash::Hash;

/// One row of a top-k breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct TopEntry<K> {
    /// The counted key (AS, hostname, issuer, content type, …).
    pub key: K,
    /// Number of observations.
    pub count: u64,
    /// Share of all observations, in percent.
    pub percent: f64,
}

/// Counts occurrences of keys and reports the most frequent ones with
/// their share of the total — the shape of Tables 2, 4, 5, 6, 7 and 9.
///
/// The counter map uses the deterministic Fx hasher: every crawl
/// request feeds several of these, and no output observes map
/// iteration order (reads go through [`TopK::top`]'s sorted selection
/// or a full count-sort).
#[derive(Debug, Clone)]
pub struct TopK<K: Eq + Hash> {
    counts: FxHashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash + Clone + Ord> TopK<K> {
    /// New empty counter.
    pub fn new() -> Self {
        TopK {
            counts: FxHashMap::default(),
            total: 0,
        }
    }

    /// Count one observation of `key`.
    pub fn add(&mut self, key: K) {
        self.add_n(key, 1);
    }

    /// Count `n` observations of `key`.
    pub fn add_n(&mut self, key: K, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Fold another counter into this one. Addition is commutative and
    /// associative, so any merge order yields the same counter — which
    /// is what keeps sharded crawls bit-identical to sequential ones.
    pub fn merge(&mut self, other: &TopK<K>) {
        for (key, &n) in &other.counts {
            self.add_n(key.clone(), n);
        }
    }

    /// Total observations across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count for one key.
    pub fn count(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// The `k` most frequent keys, descending by count (ties broken by
    /// ascending key for determinism), with percentages of the total.
    ///
    /// A bounded min-heap of `k` borrowed candidates does the
    /// selection — O(n log k) with only the `k` returned keys cloned,
    /// where the old implementation cloned-and-sorted every entry.
    pub fn top(&self, k: usize) -> Vec<TopEntry<K>> {
        // Ranks order by (count, key-descending), so the heap's
        // *minimum* is the entry top-k would drop first.
        struct Rank<'a, K: Ord>(u64, &'a K);
        impl<K: Ord> PartialEq for Rank<'_, K> {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == Ordering::Equal
            }
        }
        impl<K: Ord> Eq for Rank<'_, K> {}
        impl<K: Ord> PartialOrd for Rank<'_, K> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<K: Ord> Ord for Rank<'_, K> {
            fn cmp(&self, other: &Self) -> Ordering {
                self.0.cmp(&other.0).then_with(|| other.1.cmp(self.1))
            }
        }

        let k = k.min(self.counts.len());
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<std::cmp::Reverse<Rank<'_, K>>> = BinaryHeap::with_capacity(k + 1);
        for (key, &count) in &self.counts {
            let rank = Rank(count, key);
            if heap.len() < k {
                heap.push(std::cmp::Reverse(rank));
            } else if rank > heap.peek().expect("heap holds k entries").0 {
                heap.pop();
                heap.push(std::cmp::Reverse(rank));
            }
        }
        // Ascending `Reverse<Rank>` is descending rank: best first.
        heap.into_sorted_vec()
            .into_iter()
            .map(|std::cmp::Reverse(Rank(count, key))| TopEntry {
                key: key.clone(),
                count,
                percent: if self.total == 0 {
                    0.0
                } else {
                    count as f64 / self.total as f64 * 100.0
                },
            })
            .collect()
    }

    /// Cumulative share (percent) held by the top `k` keys — e.g. the
    /// paper's "the top-10 ASes service more than 60% of requests".
    pub fn top_share(&self, k: usize) -> f64 {
        self.top(k).iter().map(|e| e.percent).sum()
    }

    /// The smallest number of keys whose cumulative share reaches
    /// `target_percent` — e.g. "it takes 51 ASes to service 80% of the
    /// requests". Returns `None` when the total share never reaches the
    /// target.
    pub fn keys_to_reach(&self, target_percent: f64) -> Option<usize> {
        // Only the multiset of counts matters here, so skip the key
        // clones entirely. The per-entry percents (and their float
        // accumulation order: count-descending) are exactly the ones
        // `top` would produce.
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let mut cum = 0.0;
        for (i, &count) in counts.iter().enumerate() {
            if self.total > 0 {
                cum += count as f64 / self.total as f64 * 100.0;
            }
            if cum >= target_percent {
                return Some(i + 1);
            }
        }
        None
    }
}

impl TopK<String> {
    /// Count one observation of a borrowed key, allocating only when
    /// the key is new. The owned-key [`TopK::add`] clones on every
    /// call — for the crawl's hostname/issuer tables, where a handful
    /// of names repeat across hundreds of thousands of requests, the
    /// hit path should cost one hash probe and no heap traffic.
    pub fn add_str(&mut self, key: &str) {
        if let Some(c) = self.counts.get_mut(key) {
            *c += 1;
        } else {
            self.counts.insert(key.to_string(), 1);
        }
        self.total += 1;
    }
}

impl<K: Eq + Hash + Clone + Ord> Default for TopK<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone + Ord> FromIterator<K> for TopK<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut t = TopK::new();
        for k in iter {
            t.add(k);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let t: TopK<&str> = TopK::new();
        assert_eq!(t.total(), 0);
        assert!(t.top(5).is_empty());
        assert_eq!(t.keys_to_reach(50.0), None);
    }

    #[test]
    fn counting_and_percent() {
        let t: TopK<&str> = ["a", "a", "a", "b"].into_iter().collect();
        let top = t.top(2);
        assert_eq!(top[0].key, "a");
        assert_eq!(top[0].count, 3);
        assert_eq!(top[0].percent, 75.0);
        assert_eq!(top[1].key, "b");
        assert_eq!(top[1].percent, 25.0);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let t: TopK<&str> = ["b", "a"].into_iter().collect();
        let top = t.top(2);
        assert_eq!(top[0].key, "a");
        assert_eq!(top[1].key, "b");
    }

    #[test]
    fn top_share_and_keys_to_reach() {
        let mut t: TopK<u32> = TopK::new();
        t.add_n(1, 50);
        t.add_n(2, 30);
        t.add_n(3, 20);
        assert_eq!(t.top_share(1), 50.0);
        assert_eq!(t.top_share(2), 80.0);
        assert_eq!(t.keys_to_reach(80.0), Some(2));
        assert_eq!(t.keys_to_reach(81.0), Some(3));
        assert_eq!(t.keys_to_reach(100.0), Some(3));
        assert_eq!(t.keys_to_reach(101.0), None);
    }

    #[test]
    fn top_truncates() {
        let t: TopK<u32> = (0..10).collect();
        assert_eq!(t.top(3).len(), 3);
        assert_eq!(t.distinct(), 10);
    }

    #[test]
    fn merge_identity_and_associativity() {
        let a: TopK<&str> = ["a", "a", "b"].into_iter().collect();
        let b: TopK<&str> = ["b", "c"].into_iter().collect();
        let c: TopK<&str> = ["c", "c", "d"].into_iter().collect();
        // empty ⊕ x == x and x ⊕ empty == x.
        let mut left = TopK::new();
        left.merge(&a);
        assert_eq!(left.top(10), a.top(10));
        let mut right = a.clone();
        right.merge(&TopK::new());
        assert_eq!(right.top(10), a.top(10));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.top(10), a_bc.top(10));
        assert_eq!(ab_c.total(), 8);
    }

    #[test]
    fn add_str_matches_owned_add() {
        let mut borrowed: TopK<String> = TopK::new();
        let mut owned: TopK<String> = TopK::new();
        for key in ["cdn.example.com", "a.test", "cdn.example.com"] {
            borrowed.add_str(key);
            owned.add(key.to_string());
        }
        assert_eq!(borrowed.top(10), owned.top(10));
        assert_eq!(borrowed.total(), 3);
        assert_eq!(borrowed.count(&"cdn.example.com".to_string()), 2);
    }

    #[test]
    fn add_n_zero_is_noop() {
        let mut t: TopK<&str> = TopK::new();
        t.add_n("x", 0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.distinct(), 0);
    }
}
