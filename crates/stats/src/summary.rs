//! Five-number summaries used for the per-bucket rows of Table 1.

use crate::{mean, quantile_sorted};

/// A distribution summary: count, min/max, mean, and the quartiles.
///
/// Built once from a sample set; all accessors are O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample set. Returns `None` when `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        Some(Summary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: mean(&sorted).expect("non-empty"),
            p25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            p75: quantile_sorted(&sorted, 0.75),
            p90: quantile_sorted(&sorted, 0.90),
            p99: quantile_sorted(&sorted, 0.99),
        })
    }

    /// Summarize integer samples.
    pub fn from_u64(samples: &[u64]) -> Option<Self> {
        let xs: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Self::from_samples(&xs)
    }

    /// Interquartile range (p75 − p25). The paper quotes an IQR of 90
    /// for per-page request counts and an IQR shrink from 22 to 6 for
    /// certificate validations under ORIGIN coalescing.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn quartiles_of_known_set() {
        // 1..=100: median 50.5, p25 25.75, p75 75.25 under type-7.
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::from_samples(&xs).unwrap();
        assert_eq!(s.median, 50.5);
        assert_eq!(s.p25, 25.75);
        assert_eq!(s.p75, 75.25);
        assert!((s.iqr() - 49.5).abs() < 1e-9);
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn from_u64_matches_f64() {
        let a = Summary::from_u64(&[1, 2, 3]).unwrap();
        let b = Summary::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let s = Summary::from_samples(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 5.0);
    }
}
