//! Statistics helpers for the *Respect the ORIGIN!* reproduction.
//!
//! The paper reports its results almost exclusively as medians,
//! percentiles, CDFs, frequency distributions, and top-k breakdown
//! tables. This crate provides small, dependency-free building blocks
//! for all of those so the measurement crates and the benchmark
//! harness share one implementation:
//!
//! - [`Summary`] — five-number summaries plus mean/IQR, used for the
//!   per-bucket rows of Table 1.
//! - [`Cdf`] — empirical CDFs with quantile lookup and fixed-grid
//!   sampling, used for Figures 1, 3, 4, 7 and 9.
//! - [`Histogram`] — integer-valued frequency distributions
//!   (Figure 1's bar series, Table 8's SAN-size distribution).
//! - [`TopK`] — top-k counters with share-of-total percentages
//!   (Tables 2, 4, 5, 6, 7, 9).
//! - [`TimeSeries`] — bucketed longitudinal series (Figure 8).
//! - [`table`] — plain-text table rendering used by the `repro`
//!   binary to print paper-style tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod hist;
mod series;
mod summary;
pub mod table;
mod topk;

pub use cdf::Cdf;
pub use hist::Histogram;
pub use series::TimeSeries;
pub use summary::Summary;
pub use topk::TopK;

/// Compute the `q`-quantile (0.0 ..= 1.0) of a slice using linear
/// interpolation between closest ranks (type-7 estimator, the same
/// rule NumPy uses and therefore the one the paper's plots were made
/// with).
///
/// Returns `None` for an empty slice or a `q` outside `[0, 1]`.
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(origin_stats::quantile(&xs, 0.5), Some(2.5));
/// ```
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) || q.is_nan() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    Some(quantile_sorted(&sorted, q))
}

/// [`quantile`] over a slice that is already sorted ascending.
///
/// Callers that need many quantiles of the same data should sort once
/// and use this directly.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of a slice (convenience wrapper over [`quantile`]).
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

/// Median of integer samples, returned as `f64` (medians of even-sized
/// integer sets are half-integral).
pub fn median_u64(samples: &[u64]) -> Option<f64> {
    let xs: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
    median(&xs)
}

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Relative change from `before` to `after`, in percent.
///
/// Negative values are reductions: the paper's "reduces median DNS
/// queries by ∼64%" is `percent_change(14.0, 5.0) ≈ -64.3`.
pub fn percent_change(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        return 0.0;
    }
    (after - before) / before * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_out_of_range_is_none() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
        assert_eq!(quantile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn quantile_single_sample() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.5), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(40.0));
        assert_eq!(quantile(&xs, 0.5), Some(25.0));
        assert_eq!(quantile(&xs, 0.25), Some(17.5));
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [30.0, 10.0, 40.0, 20.0];
        assert_eq!(quantile(&xs, 0.5), Some(25.0));
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
    }

    #[test]
    fn median_u64_even() {
        assert_eq!(median_u64(&[1, 2, 3, 4]), Some(2.5));
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn percent_change_reduction() {
        let c = percent_change(14.0, 5.0);
        assert!((c - (-64.2857)).abs() < 0.01);
    }

    #[test]
    fn percent_change_zero_before() {
        assert_eq!(percent_change(0.0, 5.0), 0.0);
    }
}
