//! Dev calibration check: medians vs paper targets.
use origin_browser::{BrowserKind, PageLoader, UniverseEnv};
use origin_core::model::{predict, CoalescingGrouping};
use origin_netsim::SimRng;
use origin_webgen::{Dataset, DatasetConfig};

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let d = Dataset::generate(DatasetConfig {
        sites: n,
        ..Default::default()
    });
    let sites: Vec<_> = d.sites().iter().filter(|s| !s.failed).cloned().collect();
    for kind in [
        BrowserKind::Chromium,
        BrowserKind::IdealIp,
        BrowserKind::IdealOrigin,
    ] {
        let mut reqs = vec![];
        let mut dns = vec![];
        let mut tls = vec![];
        let mut ases = vec![];
        let mut plt = vec![];
        let mut hosts = vec![];
        let mut plt_ip = vec![];
        let mut plt_as = vec![];
        let mut plt_cdn = vec![];
        let mut dns_ip = vec![];
        let mut tls_ip = vec![];
        let mut dns_as = vec![];
        let mut tls_as = vec![];
        for site in &sites {
            let page = d.page_for(site);
            let mut env = UniverseEnv::new(&d);
            env.flush_dns();
            let loader = PageLoader::new(kind);
            let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xbeef);
            let pl = loader.load(&page, &mut env, &mut rng);
            reqs.push(pl.request_count() as f64);
            dns.push(pl.dns_queries() as f64);
            tls.push(pl.tls_connections() as f64);
            ases.push(pl.distinct_ases() as f64);
            plt.push(pl.plt());
            hosts.push(page.distinct_hosts().len() as f64);
            if kind == BrowserKind::Chromium {
                let (p_ip, _) = predict(&page, &pl, CoalescingGrouping::ByIp);
                let (p_as, _) = predict(&page, &pl, CoalescingGrouping::ByAs);
                let (p_cdn, _) = predict(&page, &pl, CoalescingGrouping::BySingleAs(13335));
                plt_ip.push(p_ip.plt_ms);
                plt_as.push(p_as.plt_ms);
                plt_cdn.push(p_cdn.plt_ms);
                dns_ip.push(p_ip.dns_queries as f64);
                tls_ip.push(p_ip.tls_connections as f64);
                dns_as.push(p_as.dns_queries as f64);
                tls_as.push(p_as.tls_connections as f64);
            }
        }
        let med = |v: &[f64]| origin_stats::median(v).unwrap();
        println!(
            "{:?}: reqs={:.0} hosts={:.0} dns={:.1} tls={:.1} ases={:.1} plt={:.0}ms",
            kind,
            med(&reqs),
            med(&hosts),
            med(&dns),
            med(&tls),
            med(&ases),
            med(&plt)
        );
        if kind == BrowserKind::Chromium {
            let m = med(&plt);
            println!("  model(recon): IP dns={:.1} tls={:.1} plt={:.0} ({:+.1}%) | ORIGIN dns={:.1} tls={:.1} plt={:.0} ({:+.1}%) | CDN plt={:.0} ({:+.1}%)",
                med(&dns_ip), med(&tls_ip), med(&plt_ip), (med(&plt_ip)-m)/m*100.0,
                med(&dns_as), med(&tls_as), med(&plt_as), (med(&plt_as)-m)/m*100.0,
                med(&plt_cdn), (med(&plt_cdn)-m)/m*100.0);
        }
    }
    println!("paper: reqs=82 dns=14 tls=16 ases=6 plt=5746 | model IP 13/13 plt-10% | ORIGIN 5/5 plt-27% | CDN plt-1.5%");
}
