//! Fault-injection recovery behaviour of the page loader, pinned
//! against hand-built pages so every assertion is exact: the golden
//! 421 → evict → new-connection → replay waterfall, middlebox
//! teardown with ORIGIN suppression, bounded retransmit backoff, and
//! the all-zero-profile identity that keeps clean reports reproducible.

use origin_browser::{BrowserKind, FaultSession, PageLoader, WebEnv};
use origin_dns::name::name;
use origin_dns::record::v4;
use origin_dns::{DnsName, QueryAnswer};
use origin_h2::OriginSet;
use origin_netsim::{FaultProfile, LinkProfile, SimDuration, SimRng, SimTime};
use origin_tls::{Certificate, CertificateBuilder};
use origin_trace::{ArgValue, EventKind};
use origin_web::{ContentType, Page, Resource};
use std::net::IpAddr;

/// Two hosts, one IP, one wildcard cert — the minimal world in which
/// Chromium coalesces the subresource onto the root connection.
struct MiniEnv {
    ip: IpAddr,
    cert: std::sync::Arc<Certificate>,
    link: LinkProfile,
    /// When true, servers advertise an ORIGIN set (the mid-deployment
    /// world the §6.7 middlebox broke).
    advertise_origin: bool,
}

impl MiniEnv {
    fn new() -> Self {
        MiniEnv {
            ip: v4(10, 0, 0, 1),
            cert: std::sync::Arc::new(
                CertificateBuilder::new(name("www.a.com"))
                    .san(name("*.a.com"))
                    .build(),
            ),
            link: LinkProfile::new(20.0, 50.0),
            advertise_origin: false,
        }
    }
}

impl WebEnv for MiniEnv {
    fn resolve(
        &mut self,
        _host: &DnsName,
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> Option<QueryAnswer> {
        Some(QueryAnswer {
            addresses: std::sync::Arc::new([self.ip]),
            from_cache: false,
            latency: SimDuration::from_millis(10),
        })
    }
    fn cert_for(&self, _host: &DnsName) -> Option<&Certificate> {
        Some(&self.cert)
    }
    fn cert_shared(&self, _host: &DnsName) -> Option<std::sync::Arc<Certificate>> {
        Some(self.cert.clone())
    }
    fn asn_of_ip(&self, _ip: &IpAddr) -> u32 {
        13335
    }
    fn asn_of_host(&self, _host: &DnsName) -> u32 {
        13335
    }
    fn colocated(&self, _conn_host: &DnsName, _new_host: &DnsName) -> bool {
        true
    }
    fn origin_set_for(&self, _host: &DnsName) -> Option<OriginSet> {
        self.advertise_origin
            .then(|| OriginSet::from_hosts(["www.a.com", "img.a.com"]))
    }
    fn link_for(&self, _host: &DnsName) -> LinkProfile {
        self.link.clone()
    }
}

fn two_host_page() -> Page {
    let mut page = Page::new(1, name("www.a.com"), 40_000);
    let mut img = Resource::new(name("img.a.com"), "/a.png", ContentType::Png, 12_000);
    img.discovered_by = Some(0);
    page.push(img);
    page
}

fn loader() -> PageLoader {
    // Races off so connection/DNS counts are exact.
    let mut l = PageLoader::new(BrowserKind::Chromium);
    l.config.happy_eyeballs_dup_rate = 0.0;
    l.config.speculative_dns_rate = 0.0;
    l
}

#[test]
fn clean_load_coalesces_the_subresource() {
    let page = two_host_page();
    let mut env = MiniEnv::new();
    let pl = loader().load(&page, &mut env, &mut SimRng::seed_from_u64(7));
    assert!(pl.requests[0].new_connection);
    assert!(
        pl.requests[1].coalesced,
        "img.a.com should ride the root conn"
    );
    assert_eq!(pl.tls_connections(), 1);
}

#[test]
fn golden_421_evict_replay_waterfall() {
    let page = two_host_page();
    let mut env = MiniEnv::new();
    let mut faults = FaultSession::new(FaultProfile::parse("h421=1").unwrap(), 0xBEEF);
    let mut metrics = origin_metrics::Registry::new();
    let mut tracer = origin_trace::Tracer::new();
    tracer.begin_visit(1, "fault fixture");
    let pl = loader().load_faulted(
        &page,
        &mut env,
        &mut SimRng::seed_from_u64(7),
        Some(&mut faults),
        Some(&mut metrics),
        Some(&mut tracer),
    );

    // The coalesce attempt drew a 421 and was replayed on a dedicated
    // connection: two connections total, nothing coalesced.
    let img = &pl.requests[1];
    assert!(!img.coalesced);
    assert!(img.new_connection);
    assert_eq!(pl.tls_connections(), 2);
    // The wasted 421 round trip is charged as blocked time.
    let rtt_ms = 20.0;
    assert!(
        (img.phase.blocked - rtt_ms).abs() < 1e-9,
        "blocked {} != one RTT",
        img.phase.blocked
    );

    // Golden counter fixture.
    assert_eq!(faults.counts.misdirected_421, 1);
    assert_eq!(faults.counts.pool_evictions, 1);
    assert_eq!(faults.counts.retries, 1);
    assert_eq!(faults.counts.middlebox_teardowns, 0);
    assert_eq!(faults.counts.drops, 0);
    assert_eq!(metrics.counter("fault.misdirected_421"), 1);
    assert_eq!(metrics.counter("fault.pool_evictions"), 1);
    assert_eq!(metrics.counter("fault.retries"), 1);

    // Golden span fixture: the fault category tells the whole story
    // in order — 421 observed on the coalesced connection, mapping
    // evicted one RTT later.
    let fault_events: Vec<(&str, u64)> = tracer
        .events()
        .iter()
        .filter(|e| e.cat == "fault")
        .map(|e| (e.name.as_str(), e.tid))
        .collect();
    assert_eq!(fault_events, vec![("fault.421", 1), ("fault.evict", 1)]);
    let [e421, evict] = tracer
        .events()
        .iter()
        .filter(|e| e.cat == "fault")
        .collect::<Vec<_>>()[..]
    else {
        unreachable!()
    };
    assert_eq!(
        evict.ts_us - e421.ts_us,
        20_000,
        "evict lands one RTT after the 421"
    );

    // The replayed request's span is labelled as a 421 replay and
    // rides the *new* connection's lane (tid 2 = pool index 1).
    let req_span = tracer
        .events()
        .iter()
        .find(|e| e.cat == "request" && e.name.starts_with("req 1 "))
        .expect("replayed request span");
    assert_eq!(req_span.tid, 2);
    assert!(req_span
        .args
        .iter()
        .any(|(k, v)| *k == "reuse" && *v == ArgValue::Str("replay-421".into())));
    // No coalesce flow arrow was drawn for the failed attempt.
    assert!(!tracer
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::FlowStart { .. })));
}

#[test]
fn middlebox_teardown_reconnects_with_origin_suppressed() {
    let page = two_host_page();
    let mut env = MiniEnv::new();
    env.advertise_origin = true;
    let mut faults = FaultSession::new(FaultProfile::parse("middlebox=1").unwrap(), 0xBEEF);
    let mut metrics = origin_metrics::Registry::new();
    let pl = loader().load_faulted(
        &page,
        &mut env,
        &mut SimRng::seed_from_u64(7),
        Some(&mut faults),
        Some(&mut metrics),
        None,
    );
    // Only the root opens a connection (img coalesces — ORIGIN is
    // advertised but Chromium coalesces on IP, and the torn-down
    // connection was replaced before any request used it), so exactly
    // one teardown fires, and the replacement suppressed ORIGIN.
    assert_eq!(faults.counts.middlebox_teardowns, 1);
    assert_eq!(faults.counts.origin_suppressed, 1);
    assert_eq!(faults.counts.retries, 1);
    assert_eq!(metrics.counter("fault.middlebox_teardowns"), 1);
    // The doomed handshake is charged as blocked time on the root
    // request: at least one RTT of TCP plus the TLS exchange.
    assert!(
        pl.requests[0].phase.blocked >= 20.0,
        "blocked {} should include the torn-down handshake",
        pl.requests[0].phase.blocked
    );
    // The page still loads fully.
    assert_eq!(pl.requests.len(), 2);
    assert!(pl.plt() > 0.0);
}

#[test]
fn full_drop_profile_hits_the_retry_bound_and_terminates() {
    let page = two_host_page();
    let mut env = MiniEnv::new();
    let mut clean_env = MiniEnv::new();
    let clean = loader().load(&page, &mut clean_env, &mut SimRng::seed_from_u64(7));
    let mut faults = FaultSession::new(FaultProfile::parse("drop=1").unwrap(), 0xBEEF);
    let pl = loader().load_faulted(
        &page,
        &mut env,
        &mut SimRng::seed_from_u64(7),
        Some(&mut faults),
        None,
        None,
    );
    // Every transfer burns the full retry budget, then force-delivers.
    assert_eq!(faults.counts.drops, 3 * pl.requests.len() as u64);
    assert_eq!(faults.counts.retries, faults.counts.drops);
    assert_eq!(faults.counts.backoff_events, faults.counts.drops);
    assert!(faults.counts.backoff_us > 0);
    // Exponential backoff on sim time: 200 + 400 + 800 ms plus one
    // RTT per retransmit, all charged to the receive phase.
    let penalty_ms = 200.0 + 400.0 + 800.0 + 3.0 * 20.0;
    for (f, c) in pl.requests.iter().zip(&clean.requests) {
        assert!(
            (f.phase.receive - c.phase.receive - penalty_ms).abs() < 1e-6,
            "receive {} vs clean {} missing {penalty_ms}ms penalty",
            f.phase.receive,
            c.phase.receive
        );
    }
}

#[test]
fn drop_faults_preserve_the_clean_skeleton() {
    // Fault decisions draw from a dedicated RNG, so a drop-only
    // profile must leave every phase except receive exactly as the
    // clean run computed it.
    let page = two_host_page();
    let mut clean_env = MiniEnv::new();
    let clean = loader().load(&page, &mut clean_env, &mut SimRng::seed_from_u64(7));
    let mut env = MiniEnv::new();
    let mut faults = FaultSession::new(FaultProfile::parse("drop=0.5").unwrap(), 0xBEEF);
    let faulted = loader().load_faulted(
        &page,
        &mut env,
        &mut SimRng::seed_from_u64(7),
        Some(&mut faults),
        None,
        None,
    );
    for (f, c) in faulted.requests.iter().zip(&clean.requests) {
        assert_eq!(f.host, c.host);
        assert_eq!(f.coalesced, c.coalesced);
        assert_eq!(f.new_connection, c.new_connection);
        assert_eq!(f.phase.dns, c.phase.dns);
        assert_eq!(f.phase.connect, c.phase.connect);
        assert_eq!(f.phase.ssl, c.phase.ssl);
        assert_eq!(f.phase.wait, c.phase.wait);
        assert!(f.phase.receive >= c.phase.receive);
    }
}

#[test]
fn zero_profile_is_byte_identical_to_clean() {
    let page = two_host_page();
    let mut clean_env = MiniEnv::new();
    let mut clean_metrics = origin_metrics::Registry::new();
    let clean = loader().load_instrumented(
        &page,
        &mut clean_env,
        &mut SimRng::seed_from_u64(7),
        Some(&mut clean_metrics),
    );
    let mut env = MiniEnv::new();
    let mut faults = FaultSession::new(FaultProfile::none(), 0xBEEF);
    let mut metrics = origin_metrics::Registry::new();
    let faulted = loader().load_faulted(
        &page,
        &mut env,
        &mut SimRng::seed_from_u64(7),
        Some(&mut faults),
        Some(&mut metrics),
        None,
    );
    assert_eq!(clean, faulted);
    assert_eq!(faults.counts, origin_browser::FaultCounts::default());
    // No fault.* key may materialize — the serialized registries must
    // be byte-identical.
    assert_eq!(clean_metrics.to_json(), metrics.to_json());
}
