//! Cross-visit session connection pool with lifetime management.
//!
//! The per-visit [`crate::pool::ConnectionPool`] answers the paper's
//! coalescing question *within* one page load and is discarded at the
//! end of the visit. The serving engine (DESIGN.md §16) needs the
//! orthogonal long-lived layer: a per-user pool that keeps connections
//! warm *across* visits, times out idle ones, and evicts under
//! per-edge caps and a global memory budget. That churn — not the
//! single page load — is where keep-alive handshake savings accrue
//! (Sy et al., PAPERS.md).
//!
//! The pool is deliberately a flat `Vec` with linear scans: budgets
//! are browser-realistic (tens of connections), so O(budget) scans
//! beat any index structure at this size and keep the hot path
//! allocation-free after warm-up.

use origin_netsim::{SimDuration, SimTime};

/// One warm connection in a session's pool.
#[derive(Debug, Clone, Copy)]
struct SessionConn {
    /// Coalescing key: everything this connection can serve shares it.
    key: u32,
    /// Edge (or self-hosted origin) terminating the connection; the
    /// unit of the per-edge cap.
    edge: u32,
    last_used: SimTime,
    /// Insertion sequence, the deterministic LRU tie-break when two
    /// connections share `last_used`.
    seq: u64,
    /// Requests served over the connection's lifetime so far.
    uses: u64,
}

/// Connection-churn counters, drained into metrics by the caller.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolChurn {
    /// Connections opened (pool misses).
    pub opened: u64,
    /// Pool hits: a warm connection served the key.
    pub reused: u64,
    /// Connections reaped by the idle timeout.
    pub idle_closed: u64,
    /// Evictions forced by the global budget.
    pub lru_evicted: u64,
    /// Evictions forced by a per-edge cap.
    pub edge_evicted: u64,
}

impl PoolChurn {
    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &PoolChurn) {
        self.opened += other.opened;
        self.reused += other.reused;
        self.idle_closed += other.idle_closed;
        self.lru_evicted += other.lru_evicted;
        self.edge_evicted += other.edge_evicted;
    }
}

/// A session-lifetime connection pool: keyed by coalescing key,
/// capped per edge and globally, reaped by idle timeout.
#[derive(Debug, Default)]
pub struct SessionPool {
    conns: Vec<SessionConn>,
    next_seq: u64,
}

impl SessionPool {
    /// An empty pool.
    pub fn new() -> Self {
        SessionPool::default()
    }

    /// Warm connections currently pooled.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Clear for reuse by the next session without releasing the
    /// backing allocation (slab recycling).
    pub fn reset(&mut self) {
        self.conns.clear();
        self.next_seq = 0;
    }

    /// Reap connections idle since before `now − timeout`.
    pub fn sweep_idle(&mut self, now: SimTime, timeout: SimDuration, churn: &mut PoolChurn) {
        let cutoff = now.since(SimTime::ZERO).saturating_sub(timeout);
        let before = self.conns.len();
        self.conns
            .retain(|c| c.last_used.since(SimTime::ZERO) >= cutoff);
        churn.idle_closed += (before - self.conns.len()) as u64;
    }

    /// Acquire a connection for `key` terminated at `edge`, opening
    /// one if no warm match exists. Returns `true` on reuse (no
    /// handshake) and `false` on a fresh open.
    ///
    /// On open, the pool first enforces `edge_cap` (max warm
    /// connections to one edge) and then `budget` (global cap, the
    /// memory bound), evicting the least-recently-used victim in each
    /// case. A `budget` of 0 disables pooling entirely: every acquire
    /// opens and nothing is retained — the before-arm of BENCH_6.
    pub fn acquire(
        &mut self,
        key: u32,
        edge: u32,
        now: SimTime,
        edge_cap: usize,
        budget: usize,
        churn: &mut PoolChurn,
    ) -> bool {
        if let Some(c) = self.conns.iter_mut().find(|c| c.key == key) {
            c.last_used = now;
            c.uses += 1;
            churn.reused += 1;
            return true;
        }
        churn.opened += 1;
        if budget == 0 {
            return false;
        }
        if self.conns.iter().filter(|c| c.edge == edge).count() >= edge_cap {
            self.evict_lru(Some(edge));
            churn.edge_evicted += 1;
        }
        if self.conns.len() >= budget {
            self.evict_lru(None);
            churn.lru_evicted += 1;
        }
        self.conns.push(SessionConn {
            key,
            edge,
            last_used: now,
            seq: self.next_seq,
            uses: 1,
        });
        self.next_seq += 1;
        false
    }

    /// Remove the LRU connection, optionally restricted to one edge.
    /// LRU order is `(last_used, seq)` — fully deterministic.
    fn evict_lru(&mut self, edge: Option<u32>) {
        let victim = self
            .conns
            .iter()
            .enumerate()
            .filter(|(_, c)| edge.is_none_or(|e| c.edge == e))
            .min_by_key(|(_, c)| (c.last_used, c.seq))
            .map(|(i, _)| i);
        if let Some(i) = victim {
            self.conns.swap_remove(i);
        }
    }

    /// Total requests served by currently-warm connections (diagnostic
    /// for eviction hooks/tests).
    pub fn warm_uses(&self) -> u64 {
        self.conns.iter().map(|c| c.uses).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn reuse_hits_same_key() {
        let mut p = SessionPool::new();
        let mut ch = PoolChurn::default();
        assert!(!p.acquire(7, 1, t(0), 6, 32, &mut ch));
        assert!(p.acquire(7, 1, t(1), 6, 32, &mut ch));
        assert!(!p.acquire(8, 1, t(1), 6, 32, &mut ch));
        assert_eq!((ch.opened, ch.reused), (2, 1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn idle_sweep_reaps_stale_connections() {
        let mut p = SessionPool::new();
        let mut ch = PoolChurn::default();
        p.acquire(1, 0, t(0), 6, 32, &mut ch);
        p.acquire(2, 0, t(50), 6, 32, &mut ch);
        p.sweep_idle(t(100), SimDuration::from_secs(60), &mut ch);
        assert_eq!(p.len(), 1, "only the fresh connection survives");
        assert_eq!(ch.idle_closed, 1);
        // The survivor is key 2: it still hits.
        assert!(p.acquire(2, 0, t(100), 6, 32, &mut ch));
        assert!(!p.acquire(1, 0, t(100), 6, 32, &mut ch));
    }

    #[test]
    fn per_edge_cap_evicts_lru_of_that_edge() {
        let mut p = SessionPool::new();
        let mut ch = PoolChurn::default();
        for k in 0..3 {
            p.acquire(k, 5, t(k as u64), 3, 32, &mut ch);
        }
        p.acquire(99, 6, t(10), 3, 32, &mut ch); // other edge, untouched
        p.acquire(3, 5, t(11), 3, 32, &mut ch); // breaches edge 5's cap
        assert_eq!(ch.edge_evicted, 1);
        assert_eq!(p.len(), 4);
        // Key 0 (edge 5's LRU) was the victim; key 99 on edge 6 survives.
        assert!(!p.acquire(0, 5, t(12), 3, 32, &mut ch));
        // That re-open breached the cap again, evicting edge 5's LRU.
        assert_eq!(ch.edge_evicted, 2);
        assert!(p.acquire(99, 6, t(12), 3, 32, &mut ch));
    }

    #[test]
    fn budget_evicts_globally_lru() {
        let mut p = SessionPool::new();
        let mut ch = PoolChurn::default();
        for k in 0..4 {
            p.acquire(k, k, t(k as u64), 6, 4, &mut ch);
        }
        p.acquire(10, 10, t(10), 6, 4, &mut ch);
        assert_eq!(ch.lru_evicted, 1);
        assert_eq!(p.len(), 4, "never exceeds budget");
        assert!(
            !p.acquire(0, 0, t(11), 6, 4, &mut ch),
            "LRU key 0 was evicted"
        );
    }

    #[test]
    fn zero_budget_disables_pooling() {
        let mut p = SessionPool::new();
        let mut ch = PoolChurn::default();
        assert!(!p.acquire(1, 0, t(0), 6, 0, &mut ch));
        assert!(!p.acquire(1, 0, t(1), 6, 0, &mut ch));
        assert_eq!(p.len(), 0);
        assert_eq!((ch.opened, ch.reused, ch.lru_evicted), (2, 0, 0));
    }

    #[test]
    fn lru_tie_breaks_by_insertion_seq() {
        let mut p = SessionPool::new();
        let mut ch = PoolChurn::default();
        // Two connections with identical last_used: the earlier
        // insertion must be the deterministic victim.
        p.acquire(1, 0, t(5), 6, 2, &mut ch);
        p.acquire(2, 0, t(5), 6, 2, &mut ch);
        p.acquire(3, 0, t(6), 6, 2, &mut ch);
        assert!(!p.acquire(1, 0, t(7), 6, 2, &mut ch), "key 1 evicted first");
    }

    #[test]
    fn reset_recycles_allocation() {
        let mut p = SessionPool::new();
        let mut ch = PoolChurn::default();
        for k in 0..8 {
            p.acquire(k, 0, t(0), 8, 32, &mut ch);
        }
        let cap = p.conns.capacity();
        p.reset();
        assert!(p.is_empty());
        assert_eq!(p.conns.capacity(), cap, "reset must not free the slab");
    }

    #[test]
    fn churn_merge_is_additive() {
        let mut a = PoolChurn {
            opened: 1,
            reused: 2,
            idle_closed: 3,
            lru_evicted: 4,
            edge_evicted: 5,
        };
        let b = PoolChurn {
            opened: 10,
            reused: 20,
            idle_closed: 30,
            lru_evicted: 40,
            edge_evicted: 50,
        };
        a.merge(&b);
        assert_eq!(
            (
                a.opened,
                a.reused,
                a.idle_closed,
                a.lru_evicted,
                a.edge_evicted
            ),
            (11, 22, 33, 44, 55)
        );
    }
}
