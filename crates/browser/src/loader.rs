//! The page loader: turns a [`Page`] into a [`PageLoad`] under a
//! coalescing policy and an environment.
//!
//! The loader reproduces the connection-level behaviour the paper
//! measures: per-hostname DNS queries, TCP+TLS establishment,
//! connection reuse/coalescing per policy, happy-eyeballs duplicate
//! connections and speculative DNS races (§4.2's explanation for
//! DNS≠TLS counts), warm-connection transfer speedups, and the
//! resource-tree dispatch order that shapes PLT.

use crate::env::WebEnv;
use crate::policy::BrowserKind;
use crate::pool::{ConnectionPool, PoolPartition, PooledConnection, ReuseDecision};
use origin_netsim::link::INIT_CWND;
use origin_netsim::{HandshakeModel, SimDuration, SimRng, SimTime, TlsVersion};
use origin_web::har::{PageLoad, Phase, RequestTiming};
use origin_web::{Page, Protocol};
use std::net::{IpAddr, Ipv4Addr};

/// Loader configuration.
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// The coalescing policy.
    pub kind: BrowserKind,
    /// Probability a host's first connection races a duplicate
    /// (happy-eyeballs v2, §4.2). Duplicates cost an extra TLS
    /// handshake but carry no requests.
    pub happy_eyeballs_dup_rate: f64,
    /// Probability of an extra speculative DNS query per host.
    pub speculative_dns_rate: f64,
    /// Max parallel HTTP/1.1 connections per host.
    pub max_h1_per_host: u32,
    /// Per-resource parse/dispatch delay (ms) modelling the browser's
    /// dependency-graph computation, which the §4.1 reconstruction
    /// deliberately leaves unmodified.
    pub dispatch_delay_ms: f64,
    /// §6.8's recommendation: skip the (render-blocking) DNS query
    /// for names the connection's ORIGIN set already covers. Stock
    /// Firefox keeps querying ("conservative"); setting this models
    /// the paper's proposed client change.
    pub trust_origin_without_dns: bool,
}

impl BrowserConfig {
    /// Defaults for a given policy (races only for real browsers).
    pub fn new(kind: BrowserKind) -> Self {
        let races = kind.models_races();
        BrowserConfig {
            kind,
            happy_eyeballs_dup_rate: if races { 0.10 } else { 0.0 },
            speculative_dns_rate: if races { 0.06 } else { 0.0 },
            max_h1_per_host: 6,
            dispatch_delay_ms: 2.0,
            trust_origin_without_dns: false,
        }
    }
}

/// The loader.
pub struct PageLoader {
    /// Configuration.
    pub config: BrowserConfig,
}

impl PageLoader {
    /// Loader with default config for `kind`.
    pub fn new(kind: BrowserKind) -> Self {
        PageLoader {
            config: BrowserConfig::new(kind),
        }
    }

    /// Simulate one page load. The environment's DNS cache should be
    /// flushed beforehand to match the paper's fresh-session method.
    pub fn load(&self, page: &Page, env: &mut dyn WebEnv, rng: &mut SimRng) -> PageLoad {
        self.load_instrumented(page, env, rng, None)
    }

    /// Like [`PageLoader::load`] but also folds the load's work
    /// counters and simulated phase times into `metrics`.
    ///
    /// Everything recorded is derived from the returned [`PageLoad`]
    /// alone, per page, so the registry contents are independent of
    /// how pages are sharded across crawl workers. Per-request
    /// floating-point phase values are rounded to integer microseconds
    /// *before* accumulation — summing f64s across differently-chunked
    /// shards would not be associative.
    pub fn load_instrumented(
        &self,
        page: &Page,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
        metrics: Option<&mut origin_metrics::Registry>,
    ) -> PageLoad {
        let load = self.load_inner(page, env, rng);
        if let Some(metrics) = metrics {
            record_page_metrics(&load, metrics);
        }
        load
    }

    fn load_inner(&self, page: &Page, env: &mut dyn WebEnv, rng: &mut SimRng) -> PageLoad {
        let mut pool = ConnectionPool::new();
        let mut timings: Vec<RequestTiming> = Vec::with_capacity(page.resources.len());
        // start_available[i]: earliest time resource i can dispatch.
        let mut ready = vec![0.0f64; page.resources.len()];
        // Count children seen per parent for stagger offsets.
        let mut child_seq = vec![0u32; page.resources.len()];
        // The browser main thread parses/executes resources serially;
        // this is the CPU floor under PLT that coalescing cannot
        // remove (and the reason §6.1 warns against assuming "faster").
        let mut main_thread_free = 0.0f64;

        for (idx, res) in page.resources.iter().enumerate() {
            let parent = if idx == 0 {
                None
            } else {
                Some(res.discovered_by.unwrap_or(0))
            };
            let start = if let Some(p) = parent {
                // A child dispatches after its discovering resource
                // finishes plus the CPU time to parse/execute the
                // parent — the dependency-graph computation the §4.1
                // reconstruction leaves untouched. Scripts and style
                // sheets cost more than images.
                let seq = child_seq[p];
                child_seq[p] += 1;
                let parent_cpu = if page.resources[p].content_type.is_render_blocking() {
                    rng.log_normal(40.0, 0.8)
                } else {
                    rng.log_normal(8.0, 0.5)
                };
                let dep_ready = ready[p]
                    + parent_cpu
                    + self.config.dispatch_delay_ms * (1.0 + seq as f64 * 6.0);
                // The main thread must also have worked through the
                // handling slices of every earlier resource.
                dep_ready.max(main_thread_free)
            } else {
                0.0
            };

            // Main-thread slice consumed handling this resource (a
            // queue of CPU work, not a ratchet on start times).
            main_thread_free += rng.log_normal(9.0, 0.5);
            let timing = self.run_request(page, idx, start, &mut pool, env, rng);
            ready[idx] = timing.end();
            timings.push(timing);
        }

        PageLoad {
            rank: page.rank,
            root_host: page.root_host.clone(),
            requests: timings,
        }
    }

    fn run_request(
        &self,
        page: &Page,
        idx: usize,
        start: f64,
        pool: &mut ConnectionPool,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
    ) -> RequestTiming {
        let res = &page.resources[idx];
        let host = res.host.clone();
        let asn = env.asn_of_host(&host);
        let placeholder_ip = IpAddr::V4(Ipv4Addr::UNSPECIFIED);

        // Failed/aborted requests (Table 3's N/A rows) consume no
        // network resources.
        if res.protocol == Protocol::NA {
            return RequestTiming {
                resource_index: idx,
                host,
                ip: placeholder_ip,
                asn,
                start,
                phase: Phase::default(),
                did_dns: false,
                new_connection: false,
                coalesced: false,
                protocol: Protocol::NA,
                cert_issuer: None,
                secure: res.secure,
                extra_connections: 0,
                extra_dns: 0,
            };
        }

        let link = env.link_for(&host);
        let now = SimTime::from_micros((start.max(0.0) * 1_000.0) as u64);
        let partition = PoolPartition::from(res.fetch_mode);

        // Would an existing connection serve without DNS? The ideal
        // models skip the query for coalesced names; real browsers
        // always resolve first (§6.8).
        let mut dns_ms = 0.0;
        let mut did_dns = false;
        let mut extra_dns = 0u8;
        let mut addrs: Vec<IpAddr> = Vec::new();
        let origin_trusted = self.config.trust_origin_without_dns
            && self.config.kind.uses_origin_frame()
            && matches!(
                pool.decide(
                    self.config.kind,
                    &host,
                    &[],
                    partition,
                    self.config.max_h1_per_host,
                    start,
                    |ch| env.colocated(ch, &host),
                ),
                ReuseDecision::Coalesce(_)
            );
        let skip_dns_probe = origin_trusted
            || !self.config.kind.dns_before_coalesce()
                && !matches!(
                    pool.decide(
                        self.config.kind,
                        &host,
                        &[],
                        partition,
                        self.config.max_h1_per_host,
                        start,
                        |ch| env.colocated(ch, &host),
                    ),
                    ReuseDecision::New
                );
        if !skip_dns_probe {
            match env.resolve(&host, now, rng) {
                Some(ans) => {
                    dns_ms = ans.latency.as_millis_f64();
                    did_dns = !ans.from_cache;
                    addrs = ans.addresses;
                }
                None => {
                    // NXDOMAIN: the request fails after the lookup.
                    return RequestTiming {
                        resource_index: idx,
                        host,
                        ip: placeholder_ip,
                        asn,
                        start,
                        phase: Phase {
                            dns: 15.0,
                            ..Default::default()
                        },
                        did_dns: true,
                        new_connection: false,
                        coalesced: false,
                        protocol: Protocol::NA,
                        cert_issuer: None,
                        secure: res.secure,
                        extra_connections: 0,
                        extra_dns: 0,
                    };
                }
            }
            if did_dns && rng.chance(self.config.speculative_dns_rate) {
                extra_dns = 1;
            }
        }

        let decision = pool.decide(
            self.config.kind,
            &host,
            &addrs,
            partition,
            self.config.max_h1_per_host,
            start + dns_ms,
            |ch| env.colocated(ch, &host),
        );

        let mut phase = Phase {
            dns: dns_ms,
            ..Default::default()
        };
        let mut new_connection = false;
        let mut coalesced = false;
        let mut extra_connections = 0u8;
        let mut cert_issuer = None;
        let conn_idx = match decision {
            ReuseDecision::SameHost(i) => {
                let c = pool.get_mut(i);
                // Real browsers queue behind a busy H1.1 connection;
                // the ideal models are timing-blind best cases.
                if self.config.kind.models_races()
                    && !c.multiplexes()
                    && c.busy_until > start + dns_ms
                {
                    phase.blocked += c.busy_until - (start + dns_ms);
                }
                i
            }
            ReuseDecision::Coalesce(i) => {
                coalesced = true;
                i
            }
            ReuseDecision::New => {
                new_connection = true;
                let ip = addrs.first().copied().unwrap_or(placeholder_ip);
                let cert = env.cert_for(&host).cloned();
                // CDN edges negotiate TLS 1.3; roughly half the tail
                // origins still ran TLS 1.2 (2-RTT handshakes) at the
                // paper's Feb-2021 snapshot.
                let is_tail_path = link.rtt > origin_netsim::SimDuration::from_millis(40);
                let tls = if is_tail_path && rng.chance(0.65) {
                    TlsVersion::Tls12
                } else {
                    TlsVersion::Tls13
                };
                let hs = HandshakeModel::for_certificate(
                    tls,
                    cert.as_ref().map(|c| c.wire_size()).unwrap_or(1_500),
                );
                let cost = hs.connect(&link, rng);
                phase.connect = cost.tcp.as_millis_f64();
                if res.secure {
                    phase.ssl = cost.tls.as_millis_f64();
                } else {
                    phase.ssl = 0.0;
                }
                if rng.chance(self.config.happy_eyeballs_dup_rate) {
                    extra_connections = 1;
                }
                cert_issuer = cert.as_ref().map(|c| c.issuer.clone());
                let origin_set = env.origin_set_for(&host);
                let conn = PooledConnection {
                    host: host.clone(),
                    ip,
                    available_set: addrs.clone(),
                    cert: cert.unwrap_or_else(|| {
                        // Plain-HTTP hosts have no certificate; a
                        // subject-only stand-in keeps the pool typed.
                        origin_tls::CertificateBuilder::new(host.clone()).build()
                    }),
                    origin_set,
                    protocol: res.protocol,
                    partition,
                    bytes_transferred: 0,
                    in_flight: 0,
                    busy_until: 0.0,
                };
                pool.insert(conn)
            }
        };

        // Transfer phases.
        let conn = pool.get_mut(conn_idx);
        let warm_cwnd = if conn.bytes_transferred > 0 {
            link.cwnd_after(conn.bytes_transferred, INIT_CWND)
        } else {
            INIT_CWND
        };
        phase.send = 0.3;
        phase.wait = origin_webgen::dist::sample_wait_ms(rng);
        phase.receive = link.transfer_time(res.size, warm_cwnd).as_millis_f64();
        conn.bytes_transferred += res.size;
        if self.config.kind.models_races() && !conn.multiplexes() {
            conn.busy_until = start + phase.total();
        }

        let ip = conn.ip;
        RequestTiming {
            resource_index: idx,
            host,
            ip,
            asn: if ip == placeholder_ip {
                asn
            } else {
                env.asn_of_ip(&ip).max(asn)
            },
            start,
            phase,
            did_dns,
            new_connection,
            coalesced,
            protocol: res.protocol,
            cert_issuer,
            secure: res.secure,
            extra_connections,
            extra_dns,
        }
    }
}

/// Upper bounds (inclusive) for the per-page connection histogram.
const CONNS_PER_PAGE_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32];

/// Derive `browser.*` counters and `sim.*` phase totals from one
/// completed page load.
fn record_page_metrics(load: &PageLoad, metrics: &mut origin_metrics::Registry) {
    let mut opened = 0u64;
    let mut coalesced = 0u64;
    let mut pool_reuse = 0u64;
    let mut dns_queries = 0u64;
    for r in &load.requests {
        opened += r.new_connection as u64 + r.extra_connections as u64;
        coalesced += r.coalesced as u64;
        // A request that neither opened nor coalesced rode an existing
        // same-host connection (failed N/A requests use no network).
        pool_reuse += (!r.new_connection && !r.coalesced && r.protocol != Protocol::NA) as u64;
        dns_queries += r.did_dns as u64 + r.extra_dns as u64;
        metrics.record_phase("sim.dns", SimDuration::from_millis_f64(r.phase.dns));
        metrics.record_phase("sim.connect", SimDuration::from_millis_f64(r.phase.connect));
        metrics.record_phase("sim.tls", SimDuration::from_millis_f64(r.phase.ssl));
        metrics.record_phase(
            "sim.transfer",
            SimDuration::from_millis_f64(r.phase.send + r.phase.wait + r.phase.receive),
        );
        metrics.record_phase("sim.blocked", SimDuration::from_millis_f64(r.phase.blocked));
    }
    metrics.add("browser.requests", load.requests.len() as u64);
    metrics.add("browser.connections_opened", opened);
    metrics.add("browser.coalesced_requests", coalesced);
    metrics.add("browser.pool_reuse", pool_reuse);
    metrics.add("browser.dns_queries", dns_queries);
    metrics.observe(
        "browser.connections_per_page",
        CONNS_PER_PAGE_BOUNDS,
        opened,
    );
    metrics.record_phase("sim.page", SimDuration::from_millis_f64(load.plt()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::UniverseEnv;
    use origin_webgen::{Dataset, DatasetConfig};

    fn dataset() -> Dataset {
        Dataset::generate(DatasetConfig {
            sites: 120,
            tranco_total: 500_000,
            seed: 11,
        })
    }

    fn load_first_page(kind: BrowserKind, d: &Dataset) -> PageLoad {
        let site = d
            .sites()
            .iter()
            .find(|s| !s.failed)
            .expect("a successful site")
            .clone();
        let page = d.page_for(&site);
        let mut env = UniverseEnv::new(d);
        env.flush_dns();
        let loader = PageLoader::new(kind);
        let mut rng = SimRng::seed_from_u64(99);
        loader.load(&page, &mut env, &mut rng)
    }

    #[test]
    fn load_produces_timing_per_resource() {
        let d = dataset();
        let site = d.sites().iter().find(|s| !s.failed).unwrap().clone();
        let page = d.page_for(&site);
        let pl = load_first_page(BrowserKind::Chromium, &d);
        assert_eq!(pl.requests.len(), page.resources.len());
        assert!(pl.plt() > 0.0);
        // Root request always opens a connection and queries DNS.
        assert!(pl.requests[0].new_connection);
        assert!(pl.requests[0].did_dns);
    }

    #[test]
    fn dns_once_per_host() {
        let d = dataset();
        let pl = load_first_page(BrowserKind::Chromium, &d);
        // Network DNS queries ≤ distinct hosts (cache hits after the
        // first query per host).
        let distinct_hosts: std::collections::HashSet<_> =
            pl.requests.iter().map(|r| r.host.clone()).collect();
        let base_dns: u64 = pl.requests.iter().filter(|r| r.did_dns).count() as u64;
        assert!(base_dns <= distinct_hosts.len() as u64);
    }

    #[test]
    fn same_host_requests_reuse_connections() {
        let d = dataset();
        let pl = load_first_page(BrowserKind::Chromium, &d);
        // New H2 connections ≤ distinct hosts + races.
        let distinct_hosts: std::collections::HashSet<_> =
            pl.requests.iter().map(|r| r.host.clone()).collect();
        let h2_new: u64 = pl
            .requests
            .iter()
            .filter(|r| r.new_connection && r.protocol == Protocol::H2)
            .count() as u64;
        assert!(h2_new <= distinct_hosts.len() as u64);
    }

    #[test]
    fn ideal_origin_fewer_connections_than_chromium() {
        let d1 = dataset();
        let chromium = load_first_page(BrowserKind::Chromium, &d1);
        let d2 = dataset();
        let ideal = load_first_page(BrowserKind::IdealOrigin, &d2);
        assert!(
            ideal.tls_connections() <= chromium.tls_connections(),
            "ideal {} vs chromium {}",
            ideal.tls_connections(),
            chromium.tls_connections()
        );
        assert!(
            ideal.dns_queries() <= chromium.dns_queries(),
            "ideal {} vs chromium {}",
            ideal.dns_queries(),
            chromium.dns_queries()
        );
        assert!(ideal.coalesced_requests() >= chromium.coalesced_requests());
    }

    #[test]
    fn ideal_ip_between_measured_and_origin() {
        let d1 = dataset();
        let measured = load_first_page(BrowserKind::Chromium, &d1);
        let d2 = dataset();
        let ideal_ip = load_first_page(BrowserKind::IdealIp, &d2);
        let d3 = dataset();
        let ideal_origin = load_first_page(BrowserKind::IdealOrigin, &d3);
        assert!(ideal_ip.tls_connections() <= measured.tls_connections());
        assert!(ideal_origin.tls_connections() <= ideal_ip.tls_connections());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let d1 = dataset();
        let a = load_first_page(BrowserKind::Firefox, &d1);
        let d2 = dataset();
        let b = load_first_page(BrowserKind::Firefox, &d2);
        assert_eq!(a, b);
    }

    #[test]
    fn coalesced_requests_have_no_setup_phases() {
        let d = dataset();
        let sites: Vec<_> = d
            .sites()
            .iter()
            .filter(|s| !s.failed)
            .take(10)
            .cloned()
            .collect();
        let mut total_coalesced = 0;
        for site in sites {
            let page = d.page_for(&site);
            let mut env = UniverseEnv::new(&d);
            env.flush_dns();
            let loader = PageLoader::new(BrowserKind::IdealOrigin);
            let mut rng = SimRng::seed_from_u64(99);
            let pl = loader.load(&page, &mut env, &mut rng);
            for r in &pl.requests {
                if r.coalesced {
                    assert_eq!(r.phase.connect, 0.0);
                    assert_eq!(r.phase.ssl, 0.0);
                    assert!(!r.new_connection);
                }
            }
            total_coalesced += pl.coalesced_requests();
        }
        assert!(
            total_coalesced > 0,
            "ideal origin should coalesce across 10 pages"
        );
    }
}
