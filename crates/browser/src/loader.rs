//! The page loader: turns a [`Page`] into a [`PageLoad`] under a
//! coalescing policy and an environment.
//!
//! The loader reproduces the connection-level behaviour the paper
//! measures: per-hostname DNS queries, TCP+TLS establishment,
//! connection reuse/coalescing per policy, happy-eyeballs duplicate
//! connections and speculative DNS races (§4.2's explanation for
//! DNS≠TLS counts), warm-connection transfer speedups, and the
//! resource-tree dispatch order that shapes PLT.

use crate::env::WebEnv;
use crate::policy::BrowserKind;
use crate::pool::{ConnectionPool, PoolPartition, PooledConnection, ReuseDecision};
use origin_h1::{
    Connection as H1Connection, Event as H1Event, Request as H1Request, Response as H1Response,
    Role as H1Role,
};
use origin_h3::{H3Conn, H3Counts, H3RequestStats, H3Session};
use origin_netsim::fault::{FaultInjector, NonCompliantMiddlebox, PacketFate};
use origin_netsim::link::INIT_CWND;
use origin_netsim::{
    FaultProfile, HandshakeModel, Middlebox, MiddleboxVerdict, SimDuration, SimRng, SimTime,
    TlsVersion,
};
use origin_web::har::{PageLoad, Phase, RequestTiming};
use origin_web::{Page, Protocol};
use std::net::{IpAddr, Ipv4Addr};

/// RFC 8336 ORIGIN frame type code — what the §6.7 middlebox keys on.
const ORIGIN_FRAME_TYPE: u8 = 0x0c;

/// First retransmit backoff (ms); doubles per attempt (200, 400, 800),
/// approximating the minimum TCP retransmission timeout of deployed
/// stacks rather than RFC 6298's 1 s initial RTO.
const RETRY_BASE_MS: f64 = 200.0;

/// Transfer retry bound. After this many consecutive drop/corrupt
/// verdicts the transfer is force-delivered — the model charges the
/// backoffs but never livelocks, so a crawl terminates even under
/// `drop=1`.
const MAX_TRANSFER_RETRIES: u32 = 3;

/// Per-visit fault-injection state: the profile, its packet injector,
/// the §6.7 middlebox, and a dedicated RNG.
///
/// Every fault decision — and the cost of every repair a fault
/// triggers — draws from this RNG and never from the simulation RNG.
/// That separation is what the determinism guarantees hang off:
///
/// - a faulted load preserves the clean load's random stream, so the
///   page skeleton, handshake costs and server think times are those
///   of the clean run, perturbed only by the injected faults;
/// - the all-zero profile draws nothing (`SimRng::chance(0.0)` does
///   not consume a draw) and is byte-identical to a clean load;
/// - seeding from the site's page seed makes a faulted crawl
///   reproducible at any thread count.
pub struct FaultSession {
    profile: FaultProfile,
    injector: FaultInjector,
    middlebox: NonCompliantMiddlebox,
    rng: SimRng,
    /// Counters accumulated over the loads this session observed.
    pub counts: FaultCounts,
}

impl FaultSession {
    /// Session for one page visit. `seed` should derive from the
    /// site's own seed so shards agree on it.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultSession {
            profile,
            injector: profile.injector(),
            middlebox: NonCompliantMiddlebox::default(),
            rng: SimRng::seed_from_u64(seed),
            counts: FaultCounts::default(),
        }
    }

    /// The profile this session injects.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }
}

/// What fault injection did to a load, and what recovery cost:
/// every counter lands in the `fault.*` metrics namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Coalesced requests answered `421 Misdirected Request`.
    pub misdirected_421: u64,
    /// (host → connection) mappings evicted from the pool after a 421.
    pub pool_evictions: u64,
    /// Connections torn down by the §6.7 middlebox on the ORIGIN frame.
    pub middlebox_teardowns: u64,
    /// Reconnects that suppressed ORIGIN advertisement after a teardown.
    pub origin_suppressed: u64,
    /// Transfers that lost a packet.
    pub drops: u64,
    /// Transfers corrupted in flight.
    pub corruptions: u64,
    /// Total recovery attempts (421 replays + reconnects + retransmits).
    pub retries: u64,
    /// Retransmit backoff periods served.
    pub backoff_events: u64,
    /// Total simulated time (µs) spent in retransmit backoff.
    pub backoff_us: u64,
}

impl FaultCounts {
    /// Field-wise `self - earlier`; `earlier` must be a prior snapshot.
    pub fn since(&self, earlier: &FaultCounts) -> FaultCounts {
        FaultCounts {
            misdirected_421: self.misdirected_421 - earlier.misdirected_421,
            pool_evictions: self.pool_evictions - earlier.pool_evictions,
            middlebox_teardowns: self.middlebox_teardowns - earlier.middlebox_teardowns,
            origin_suppressed: self.origin_suppressed - earlier.origin_suppressed,
            drops: self.drops - earlier.drops,
            corruptions: self.corruptions - earlier.corruptions,
            retries: self.retries - earlier.retries,
            backoff_events: self.backoff_events - earlier.backoff_events,
            backoff_us: self.backoff_us - earlier.backoff_us,
        }
    }
}

/// The five policies evaluated by the redundant-connection probe and
/// the `h1.redundant.*` counter each one feeds, in the fixed slot
/// order shared by the per-visit stats array. Every legacy HTTP/1.1
/// connection that opens is tested against *all five* — the question
/// "would h2 have merged this?" is policy-relative (Sander et al.),
/// and answering it for every policy in one crawl is what lets the
/// redundancy report compare them on identical traffic.
pub const REDUNDANCY_KINDS: [(BrowserKind, &str); 5] = [
    (BrowserKind::Chromium, "h1.redundant.chromium"),
    (BrowserKind::Firefox, "h1.redundant.firefox"),
    (BrowserKind::FirefoxOrigin, "h1.redundant.firefox_origin"),
    (BrowserKind::IdealIp, "h1.redundant.ideal_ip"),
    (BrowserKind::IdealOrigin, "h1.redundant.ideal_origin"),
];

/// Per-visit HTTP/3 accounting. Only h3 pages touch it, so on a
/// pure-h2 visit every field is zero and nothing reaches the metrics
/// registry (see [`record_h3_metrics`]).
#[derive(Debug, Default, Clone, Copy)]
struct H3Stats {
    /// Pages whose origins deploy h3.
    pages: u64,
    /// Requests that rode QUIC connections.
    requests: u64,
    /// QPACK encoder-stream instructions across the visit's
    /// connections.
    qpack_instructions: u64,
    /// QPACK dynamic-table evictions (encoder side).
    qpack_evictions: u64,
    /// Connection IDs issued (including each handshake's sequence 0).
    cids_issued: u64,
    /// Connection IDs retired by rotation.
    cids_retired: u64,
    /// The session's handshake/resumption/Alt-Svc counters.
    counts: H3Counts,
}

/// Per-visit HTTP/1.1 accounting. Only legacy pages touch it, so on a
/// pure-h2 visit every field is zero and nothing reaches the metrics
/// registry (see [`record_h1_metrics`]).
#[derive(Debug, Default, Clone, Copy)]
struct H1Stats {
    requests: u64,
    connections_opened: u64,
    keepalive_reuse: u64,
    close_delimited: u64,
    pages: u64,
    /// Redundant-connection counts, slot-for-slot with
    /// [`REDUNDANCY_KINDS`].
    redundant: [u64; 5],
}

/// Per-visit working memory, recycled across page loads.
///
/// A cold load allocates a connection pool (five index maps), the
/// timing vector and three per-resource buffers on every visit; a
/// crawl does that millions of times. A `VisitArena` owned by each
/// crawl worker keeps those allocations warm: every buffer is
/// `clear()`ed — capacity retained — at the start of the next load,
/// and [`VisitArena::recycle`] returns a consumed [`PageLoad`]'s
/// request storage to the arena.
///
/// Determinism: the arena carries *capacity* only. Every value
/// written during a load is a pure function of the page, the
/// environment and the RNG, so loads through a warm arena are
/// byte-identical to loads through a fresh one (asserted by
/// `arena_reuse_is_output_invisible`).
#[derive(Default)]
pub struct VisitArena {
    pool: ConnectionPool,
    ready: Vec<f64>,
    child_seq: Vec<u32>,
    conn_open_us: Vec<u64>,
    timings: Vec<RequestTiming>,
    /// One slot per pooled connection: the HTTP/1.1 state machine
    /// driving it, for connections a legacy page opened over h1.
    /// `None` for h2 connections (and everything on a pure-h2 page).
    h1_sessions: Vec<Option<H1Connection>>,
    /// One slot per pooled connection: the QPACK/connection-ID
    /// machinery of a QUIC connection. `None` for TCP connections
    /// (and everything outside an h3 universe).
    h3_conns: Vec<Option<H3Conn>>,
    /// The visit's h3 memory: Alt-Svc scopes, session tickets,
    /// validated addresses. Reset per visit (fresh browser session);
    /// never touched on non-h3 pages.
    h3_session: H3Session,
}

impl VisitArena {
    /// Empty arena (first load allocates, later loads recycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a finished load's request storage to the arena so the
    /// next load reuses its capacity.
    pub fn recycle(&mut self, load: PageLoad) {
        if load.requests.capacity() > self.timings.capacity() {
            let mut v = load.requests;
            v.clear();
            self.timings = v;
        }
    }
}

/// Loader configuration.
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// The coalescing policy.
    pub kind: BrowserKind,
    /// Probability a host's first connection races a duplicate
    /// (happy-eyeballs v2, §4.2). Duplicates cost an extra TLS
    /// handshake but carry no requests.
    pub happy_eyeballs_dup_rate: f64,
    /// Probability of an extra speculative DNS query per host.
    pub speculative_dns_rate: f64,
    /// Max parallel HTTP/1.1 connections per host.
    pub max_h1_per_host: u32,
    /// Per-resource parse/dispatch delay (ms) modelling the browser's
    /// dependency-graph computation, which the §4.1 reconstruction
    /// deliberately leaves unmodified.
    pub dispatch_delay_ms: f64,
    /// §6.8's recommendation: skip the (render-blocking) DNS query
    /// for names the connection's ORIGIN set already covers. Stock
    /// Firefox keeps querying ("conservative"); setting this models
    /// the paper's proposed client change.
    pub trust_origin_without_dns: bool,
}

impl BrowserConfig {
    /// Defaults for a given policy (races only for real browsers).
    pub fn new(kind: BrowserKind) -> Self {
        let races = kind.models_races();
        BrowserConfig {
            kind,
            happy_eyeballs_dup_rate: if races { 0.10 } else { 0.0 },
            speculative_dns_rate: if races { 0.06 } else { 0.0 },
            max_h1_per_host: 6,
            dispatch_delay_ms: 2.0,
            trust_origin_without_dns: false,
        }
    }
}

/// The loader.
pub struct PageLoader {
    /// Configuration.
    pub config: BrowserConfig,
}

impl PageLoader {
    /// Loader with default config for `kind`.
    pub fn new(kind: BrowserKind) -> Self {
        PageLoader {
            config: BrowserConfig::new(kind),
        }
    }

    /// Simulate one page load. The environment's DNS cache should be
    /// flushed beforehand to match the paper's fresh-session method.
    pub fn load(&self, page: &Page, env: &mut dyn WebEnv, rng: &mut SimRng) -> PageLoad {
        self.load_instrumented(page, env, rng, None)
    }

    /// Like [`PageLoader::load`] but also folds the load's work
    /// counters and simulated phase times into `metrics`.
    ///
    /// Everything recorded is derived from the returned [`PageLoad`]
    /// alone, per page, so the registry contents are independent of
    /// how pages are sharded across crawl workers. Per-request
    /// floating-point phase values are rounded to integer microseconds
    /// *before* accumulation — summing f64s across differently-chunked
    /// shards would not be associative.
    pub fn load_instrumented(
        &self,
        page: &Page,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
        metrics: Option<&mut origin_metrics::Registry>,
    ) -> PageLoad {
        self.load_faulted(page, env, rng, None, metrics, None)
    }

    /// [`PageLoader::load_instrumented`] plus span tracing: DNS
    /// queries, TCP/TLS establishment with SAN validation, per-request
    /// phase spans on the serving connection's track, coalescing
    /// decisions annotated with the policy rule that allowed them, and
    /// flow events linking each coalesced request back to the opening
    /// of the connection it reused.
    ///
    /// The caller owns the visit context: call
    /// [`origin_trace::Tracer::begin_visit`] with the site's rank
    /// before loading. Tracing reads the same state the simulation
    /// computes and never draws from `rng`, so a traced load returns
    /// a [`PageLoad`] identical to an untraced one.
    pub fn load_traced(
        &self,
        page: &Page,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
        metrics: Option<&mut origin_metrics::Registry>,
        tracer: &mut origin_trace::Tracer,
    ) -> PageLoad {
        self.load_faulted(page, env, rng, None, metrics, Some(tracer))
    }

    /// The full-featured entry point: [`PageLoader::load_traced`] plus
    /// deterministic fault injection. With `faults` set, the load
    /// suffers the session's profile and performs the client-side
    /// recovery the paper implies — 421 → evict + replay on a
    /// dedicated connection, middlebox teardown → reconnect with
    /// ORIGIN suppressed, packet drop → bounded exponential-backoff
    /// retransmit — and the per-visit `fault.*` counter deltas are
    /// folded into `metrics`. Zero-valued fault counters are never
    /// materialized, so an all-zero profile leaves the registry
    /// byte-identical to a clean run's.
    pub fn load_faulted(
        &self,
        page: &Page,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
        faults: Option<&mut FaultSession>,
        metrics: Option<&mut origin_metrics::Registry>,
        tracer: Option<&mut origin_trace::Tracer>,
    ) -> PageLoad {
        self.load_faulted_with(
            page,
            env,
            rng,
            faults,
            metrics,
            tracer,
            &mut VisitArena::new(),
        )
    }

    /// [`PageLoader::load_faulted`] drawing working memory from a
    /// caller-owned [`VisitArena`] instead of allocating per visit.
    /// The returned load is byte-identical either way; crawl workers
    /// hold one arena each and recycle loads back into it.
    #[allow(clippy::too_many_arguments)] // the full-featured entry point plus its arena
    pub fn load_faulted_with(
        &self,
        page: &Page,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
        faults: Option<&mut FaultSession>,
        metrics: Option<&mut origin_metrics::Registry>,
        tracer: Option<&mut origin_trace::Tracer>,
        arena: &mut VisitArena,
    ) -> PageLoad {
        self.load_observed(
            page,
            env,
            rng,
            faults,
            metrics,
            tracer,
            arena,
            origin_obs::VisitSinks::default(),
        )
    }

    /// [`PageLoader::load_faulted_with`] plus streaming observability:
    /// with `sinks.flight` set, the load's notable events — connection
    /// opens, injected faults and their recoveries, h1 close-delimited
    /// teardowns, NXDOMAIN lookups — are appended to the caller's
    /// bounded [`origin_obs::FlightRecorder`] as they happen; with
    /// `sinks.visit` set, the completed load's per-visit observation
    /// (request/connection/fault/h1 counters, PLT, handshake and byte
    /// events with trace-span exemplar references) is derived into the
    /// caller's [`origin_obs::VisitObs`].
    ///
    /// The caller owns the visit context: call
    /// [`origin_obs::FlightRecorder::begin_visit`] with the site's
    /// rank before loading, and [`origin_obs::VisitObs::clear`] the
    /// observation between visits. Observation reads the same state
    /// the simulation computes and never draws from `rng`, so an
    /// observed load returns a [`PageLoad`] identical to an
    /// unobserved one.
    #[allow(clippy::too_many_arguments)]
    pub fn load_observed(
        &self,
        page: &Page,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
        mut faults: Option<&mut FaultSession>,
        metrics: Option<&mut origin_metrics::Registry>,
        tracer: Option<&mut origin_trace::Tracer>,
        arena: &mut VisitArena,
        sinks: origin_obs::VisitSinks<'_>,
    ) -> PageLoad {
        let before = faults.as_deref().map(|f| f.counts).unwrap_or_default();
        let mut h1 = H1Stats::default();
        let mut h3 = H3Stats::default();
        let load = self.load_inner(
            page,
            env,
            rng,
            tracer,
            faults.as_deref_mut(),
            arena,
            &mut h1,
            &mut h3,
            sinks.flight,
        );
        let delta = faults.as_deref().map(|f| f.counts.since(&before));
        if let Some(v) = sinks.visit {
            observe_visit(v, page, &load, &h1, delta.as_ref());
        }
        if let Some(metrics) = metrics {
            record_page_metrics(&load, metrics);
            record_h1_metrics(&h1, metrics);
            record_h3_metrics(&h3, metrics);
            if let Some(delta) = &delta {
                record_fault_metrics(delta, metrics);
            }
        }
        load
    }

    #[allow(clippy::too_many_arguments)]
    fn load_inner(
        &self,
        page: &Page,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
        mut tracer: Option<&mut origin_trace::Tracer>,
        mut faults: Option<&mut FaultSession>,
        arena: &mut VisitArena,
        h1: &mut H1Stats,
        h3: &mut H3Stats,
        mut flight: Option<&mut origin_obs::FlightRecorder>,
    ) -> PageLoad {
        let n = page.resources.len();
        h1.pages += u64::from(page.legacy);
        h3.pages += u64::from(page.h3);
        arena.pool.clear();
        arena.h1_sessions.clear();
        arena.h3_conns.clear();
        arena.h3_session.recycle();
        let mut timings = std::mem::take(&mut arena.timings);
        timings.clear();
        timings.reserve(n);
        // start_available[i]: earliest time resource i can dispatch.
        arena.ready.clear();
        arena.ready.resize(n, 0.0f64);
        // Count children seen per parent for stagger offsets.
        arena.child_seq.clear();
        arena.child_seq.resize(n, 0u32);
        // The browser main thread parses/executes resources serially;
        // this is the CPU floor under PLT that coalescing cannot
        // remove (and the reason §6.1 warns against assuming "faster").
        let mut main_thread_free = 0.0f64;
        // Simulated time (µs) each pooled connection started opening —
        // the anchor for coalescing flow arrows.
        arena.conn_open_us.clear();

        for (idx, res) in page.resources.iter().enumerate() {
            let parent = if idx == 0 {
                None
            } else {
                Some(res.discovered_by.unwrap_or(0))
            };
            let start = if let Some(p) = parent {
                // A child dispatches after its discovering resource
                // finishes plus the CPU time to parse/execute the
                // parent — the dependency-graph computation the §4.1
                // reconstruction leaves untouched. Scripts and style
                // sheets cost more than images.
                let seq = arena.child_seq[p];
                arena.child_seq[p] += 1;
                let parent_cpu = if page.resources[p].content_type.is_render_blocking() {
                    rng.log_normal(40.0, 0.8)
                } else {
                    rng.log_normal(8.0, 0.5)
                };
                let dep_ready = arena.ready[p]
                    + parent_cpu
                    + self.config.dispatch_delay_ms * (1.0 + seq as f64 * 6.0);
                // The main thread must also have worked through the
                // handling slices of every earlier resource.
                dep_ready.max(main_thread_free)
            } else {
                0.0
            };

            // Main-thread slice consumed handling this resource (a
            // queue of CPU work, not a ratchet on start times).
            main_thread_free += rng.log_normal(9.0, 0.5);
            let timing = self.run_request(
                page,
                idx,
                start,
                &mut arena.pool,
                env,
                rng,
                tracer.as_deref_mut(),
                faults.as_deref_mut(),
                &mut arena.conn_open_us,
                &mut arena.h1_sessions,
                h1,
                &mut arena.h3_session,
                &mut arena.h3_conns,
                h3,
                flight.as_deref_mut(),
            );
            arena.ready[idx] = timing.end();
            timings.push(timing);
        }

        if page.h3 {
            // Fold the visit's session counters and per-connection
            // QPACK/CID totals into the stats the registry sees.
            h3.counts = arena.h3_session.counts;
            for conn in arena.h3_conns.iter().flatten() {
                h3.qpack_instructions += conn.qpack_instructions();
                h3.qpack_evictions += conn.qpack_evictions();
                h3.cids_issued += conn.cids_issued();
                h3.cids_retired += conn.cids_retired();
            }
        }

        PageLoad {
            rank: page.rank,
            root_host: page.root_host.clone(),
            requests: timings,
        }
    }

    #[allow(clippy::too_many_arguments)] // one request, its world, and an observer
    fn run_request(
        &self,
        page: &Page,
        idx: usize,
        start: f64,
        pool: &mut ConnectionPool,
        env: &mut dyn WebEnv,
        rng: &mut SimRng,
        mut tracer: Option<&mut origin_trace::Tracer>,
        mut faults: Option<&mut FaultSession>,
        conn_open_us: &mut Vec<u64>,
        h1_sessions: &mut Vec<Option<H1Connection>>,
        h1: &mut H1Stats,
        h3_session: &mut H3Session,
        h3_conns: &mut Vec<Option<H3Conn>>,
        h3: &mut H3Stats,
        mut flight: Option<&mut origin_obs::FlightRecorder>,
    ) -> RequestTiming {
        let res = &page.resources[idx];
        // h3 participation gate: only secure h2 resources on a page
        // whose origins deploy h3 can upgrade to QUIC. Never true
        // outside an h3 universe, so the pure-h2 paths below are
        // untouched at `h3_share = 0`.
        let h3_eligible = page.h3 && res.secure && res.protocol == Protocol::H2;
        // A legacy page's HTTP/1.1 requests drive the sans-IO state
        // machine; the gate is the page's legacy flag — never the
        // protocol alone — so the default universe's sampled-H11
        // traffic keeps its exact pre-mixed-universe behaviour.
        let legacy_h1 = page.legacy && res.protocol == Protocol::H11;
        let host = res.host.clone();
        let (asn, link) = env.request_facts(&host);
        let placeholder_ip = IpAddr::V4(Ipv4Addr::UNSPECIFIED);

        // Failed/aborted requests (Table 3's N/A rows) consume no
        // network resources.
        if res.protocol == Protocol::NA {
            if let Some(t) = tracer.as_deref_mut() {
                t.set_tid(0);
                t.instant_at(
                    "req.skipped",
                    "request",
                    ms_us(start),
                    vec![("host", host.as_str().into()), ("reason", "n/a".into())],
                );
            }
            return RequestTiming {
                resource_index: idx,
                host,
                ip: placeholder_ip,
                asn,
                start,
                phase: Phase::default(),
                did_dns: false,
                new_connection: false,
                coalesced: false,
                protocol: Protocol::NA,
                cert_issuer: None,
                secure: res.secure,
                extra_connections: 0,
                extra_dns: 0,
            };
        }

        let now = SimTime::from_micros((start.max(0.0) * 1_000.0) as u64);
        let partition = PoolPartition::from(res.fetch_mode);

        // Would an existing connection serve without DNS? The ideal
        // models skip the query for coalesced names; real browsers
        // always resolve first (§6.8).
        let mut dns_ms = 0.0;
        let mut did_dns = false;
        let mut extra_dns = 0u8;
        let mut addrs: std::sync::Arc<[IpAddr]> = empty_addrs();
        let origin_trusted = self.config.trust_origin_without_dns
            && self.config.kind.uses_origin_frame()
            && matches!(
                pool.decide(
                    self.config.kind,
                    &host,
                    &[],
                    partition,
                    self.config.max_h1_per_host,
                    start,
                    |ch| env.colocated(ch, &host),
                ),
                ReuseDecision::Coalesce(_)
            );
        let skip_dns_probe = origin_trusted
            || !self.config.kind.dns_before_coalesce()
                && !matches!(
                    pool.decide(
                        self.config.kind,
                        &host,
                        &[],
                        partition,
                        self.config.max_h1_per_host,
                        start,
                        |ch| env.colocated(ch, &host),
                    ),
                    ReuseDecision::New
                );
        if !skip_dns_probe {
            let answer = match tracer.as_deref_mut() {
                Some(t) => {
                    t.set_tid(0);
                    t.set_now_us(ms_us(start));
                    env.resolve_traced(&host, now, rng, t)
                }
                None => env.resolve(&host, now, rng),
            };
            match answer {
                Some(ans) => {
                    dns_ms = ans.latency.as_millis_f64();
                    did_dns = !ans.from_cache;
                    addrs = ans.addresses;
                }
                None => {
                    // NXDOMAIN: the request fails after the lookup.
                    if let Some(rec) = flight.as_deref_mut() {
                        rec.record(ms_us(start), "dns.nxdomain", idx as u64, host.as_str());
                    }
                    if let Some(t) = tracer.as_deref_mut() {
                        t.complete(
                            &format!("req {} {}", idx, host.as_str()),
                            "request",
                            ms_us(start),
                            ms_us(15.0),
                            vec![
                                ("host", host.as_str().into()),
                                ("outcome", "nxdomain".into()),
                            ],
                        );
                    }
                    return RequestTiming {
                        resource_index: idx,
                        host,
                        ip: placeholder_ip,
                        asn,
                        start,
                        phase: Phase {
                            dns: 15.0,
                            ..Default::default()
                        },
                        did_dns: true,
                        new_connection: false,
                        coalesced: false,
                        protocol: Protocol::NA,
                        cert_issuer: None,
                        secure: res.secure,
                        extra_connections: 0,
                        extra_dns: 0,
                    };
                }
            }
            if did_dns && rng.chance(self.config.speculative_dns_rate) {
                extra_dns = 1;
            }
        }

        let mut decision = pool.decide(
            self.config.kind,
            &host,
            &addrs,
            partition,
            self.config.max_h1_per_host,
            start + dns_ms,
            |ch| env.colocated(ch, &host),
        );

        // Setup time wasted on failed attempts (421 round trip,
        // middlebox-torn handshake) before the request could proceed;
        // charged as blocked time, like a browser waterfall would show.
        let mut fault_penalty_ms = 0.0;
        let mut replayed_after_421 = false;
        if let (Some(f), ReuseDecision::Coalesce(i)) = (faults.as_deref_mut(), decision) {
            if f.rng.chance(f.profile.h421_for(host.as_str())) {
                // The server behind the coalesced connection refused
                // this authority: one full round trip learns that via
                // `421 Misdirected Request`. Evict the mapping so no
                // later request repeats the mistake, then replay on a
                // dedicated connection.
                let rtt_ms = link.rtt.as_millis_f64();
                pool.evict_coalesce(&host, i);
                f.counts.misdirected_421 += 1;
                f.counts.pool_evictions += 1;
                f.counts.retries += 1;
                if let Some(rec) = flight.as_deref_mut() {
                    rec.record(ms_us(start + dns_ms), "fault.421", i as u64, host.as_str());
                }
                if let Some(t) = tracer.as_deref_mut() {
                    t.set_tid(1 + i as u64);
                    t.instant_at(
                        "fault.421",
                        "fault",
                        ms_us(start + dns_ms),
                        vec![("host", host.as_str().into()), ("conn", (i as u64).into())],
                    );
                    t.instant_at(
                        "fault.evict",
                        "fault",
                        ms_us(start + dns_ms + rtt_ms),
                        vec![("host", host.as_str().into()), ("conn", (i as u64).into())],
                    );
                }
                fault_penalty_ms += rtt_ms;
                replayed_after_421 = true;
                decision = ReuseDecision::New;
            }
        }

        let mut phase = Phase {
            dns: dns_ms,
            ..Default::default()
        };
        let mut new_connection = false;
        let mut coalesced = false;
        let mut extra_connections = 0u8;
        let mut cert_issuer = None;
        let mut reuse_label = "new";
        let mut rule_label: Option<&'static str> = None;
        let conn_idx = match decision {
            ReuseDecision::SameHost(i) => {
                reuse_label = "same-host";
                let c = pool.get_mut(i);
                // Real browsers queue behind a busy H1.1 connection;
                // the ideal models are timing-blind best cases.
                if self.config.kind.models_races()
                    && !c.multiplexes()
                    && c.busy_until > start + dns_ms
                {
                    phase.blocked += c.busy_until - (start + dns_ms);
                }
                i
            }
            ReuseDecision::Coalesce(i) => {
                coalesced = true;
                reuse_label = "coalesced";
                let rule = pool.explain_coalesce(self.config.kind, &host, &addrs, i);
                rule_label = Some(rule);
                if let Some(t) = tracer.as_deref_mut() {
                    // Flow arrow from the reused connection's opening
                    // to this request's dispatch, plus an instant
                    // naming the rule that allowed the reuse.
                    let conn_tid = 1 + i as u64;
                    let open_ts = conn_open_us.get(i).copied().unwrap_or(0);
                    let id = t.next_id();
                    t.flow_start(id, "coalesce", "flow", open_ts, conn_tid);
                    t.set_tid(conn_tid);
                    t.flow_end(id, "coalesce", "flow", ms_us(start + dns_ms));
                    t.instant_at(
                        "coalesce",
                        "request",
                        ms_us(start + dns_ms),
                        vec![
                            ("rule", rule.into()),
                            ("conn", (i as u64).into()),
                            ("conn_host", pool.connections()[i].host.as_str().into()),
                        ],
                    );
                }
                i
            }
            ReuseDecision::New => {
                new_connection = true;
                let ip = addrs.first().copied().unwrap_or(placeholder_ip);
                let cert = env.cert_shared(&host);
                let quic_cert = match &cert {
                    Some(c) if h3_eligible && h3_session.knows_h3(c.serial) => Some(c.clone()),
                    _ => None,
                };
                if let Some(qc) = quic_cert {
                    open_quic_connection(
                        qc,
                        &host,
                        ip,
                        &addrs,
                        partition,
                        res.protocol,
                        start + dns_ms + fault_penalty_ms,
                        &link,
                        rng,
                        pool,
                        conn_open_us,
                        h1_sessions,
                        h3_conns,
                        h3_session,
                        &mut phase,
                        &mut cert_issuer,
                        tracer.as_deref_mut(),
                        flight.as_deref_mut(),
                    )
                } else {
                    // ALPN (RFC 7301) selects what the fresh connection
                    // speaks: the client always offers `h2, http/1.1`,
                    // the origin's advertisement — its deployment fact —
                    // wins. Pure computation, so running it on every
                    // setup perturbs nothing.
                    let alpn = origin_tls::alpn_negotiate(
                        origin_tls::alpn::CLIENT_OFFER,
                        origin_tls::alpn::server_advertisement(res.protocol == Protocol::H2),
                    );
                    debug_assert_eq!(
                        alpn == Some(origin_tls::AlpnProtocol::H2),
                        res.protocol == Protocol::H2,
                        "negotiated ALPN must agree with the deployed protocol"
                    );
                    // CDN edges negotiate TLS 1.3; roughly half the tail
                    // origins still ran TLS 1.2 (2-RTT handshakes) at the
                    // paper's Feb-2021 snapshot.
                    let is_tail_path = link.rtt > origin_netsim::SimDuration::from_millis(40);
                    let tls = if is_tail_path && rng.chance(0.65) {
                        TlsVersion::Tls12
                    } else {
                        TlsVersion::Tls13
                    };
                    let hs = HandshakeModel::for_certificate(
                        tls,
                        cert.as_ref().map(|c| c.wire_size()).unwrap_or(1_500),
                    );
                    let mut cost = hs.connect(&link, rng);
                    let mut origin_set = env.origin_set_for(&host);
                    // Whether the middlebox teardown below also ate
                    // the origin's `alt-svc: h3` advertisement (the
                    // reconnect suppresses optional frames/headers).
                    let mut altsvc_suppressed = false;
                    if let Some(f) = faults.as_deref_mut() {
                        if origin_set.is_some()
                            && f.rng.chance(f.profile.middlebox)
                            && f.middlebox.inspect(ORIGIN_FRAME_TYPE) == MiddleboxVerdict::TearDown
                        {
                            // §6.7: the handshake succeeded, then the
                            // ORIGIN frame the edge sent on the fresh
                            // connection tripped an on-path middlebox,
                            // which tore the connection down. The wasted
                            // setup is charged as blocked time and the
                            // client reconnects with ORIGIN advertisement
                            // suppressed (the fail-open the CDN shipped).
                            let wasted = cost.tcp.as_millis_f64()
                                + if res.secure {
                                    cost.tls.as_millis_f64()
                                } else {
                                    0.0
                                };
                            if let Some(rec) = flight.as_deref_mut() {
                                rec.record(
                                    ms_us(start + dns_ms + fault_penalty_ms + wasted),
                                    "fault.middlebox_teardown",
                                    u64::from(ORIGIN_FRAME_TYPE),
                                    host.as_str(),
                                );
                            }
                            if let Some(t) = tracer.as_deref_mut() {
                                t.set_tid(1 + pool.len() as u64);
                                t.instant_at(
                                    "fault.middlebox_teardown",
                                    "fault",
                                    ms_us(start + dns_ms + fault_penalty_ms + wasted),
                                    vec![
                                        ("host", host.as_str().into()),
                                        ("frame_type", u64::from(ORIGIN_FRAME_TYPE).into()),
                                        ("origin_suppressed", true.into()),
                                    ],
                                );
                            }
                            fault_penalty_ms += wasted;
                            cost = hs.connect(&link, &mut f.rng);
                            origin_set = None;
                            altsvc_suppressed = true;
                            f.counts.middlebox_teardowns += 1;
                            f.counts.origin_suppressed += 1;
                            f.counts.retries += 1;
                        }
                    }
                    let setup_start = start + dns_ms + fault_penalty_ms;
                    phase.connect = cost.tcp.as_millis_f64();
                    if res.secure {
                        phase.ssl = cost.tls.as_millis_f64();
                    } else {
                        phase.ssl = 0.0;
                    }
                    if rng.chance(self.config.happy_eyeballs_dup_rate) {
                        extra_connections = 1;
                    }
                    cert_issuer = cert.as_ref().map(|c| c.issuer.clone());
                    if let Some(t) = tracer.as_deref_mut() {
                        let conn_no = pool.len();
                        let conn_tid = 1 + conn_no as u64;
                        t.name_thread(conn_tid, &format!("conn {} {}", conn_no, host.as_str()));
                        t.set_tid(conn_tid);
                        t.complete(
                            "tcp.connect",
                            "net",
                            ms_us(setup_start),
                            ms_us(phase.connect),
                            vec![("ip", ip.to_string().into())],
                        );
                        if res.secure {
                            let hs_start = setup_start + phase.connect;
                            let mut hs_args: Vec<(&'static str, origin_trace::ArgValue)> = vec![
                                (
                                    "version",
                                    match tls {
                                        TlsVersion::Tls12 => "TLS 1.2",
                                        TlsVersion::Tls13 => "TLS 1.3",
                                        TlsVersion::Tls13ZeroRtt => "TLS 1.3 0-RTT",
                                    }
                                    .into(),
                                ),
                                ("sni", host.as_str().into()),
                                ("issuer", cert_issuer.clone().unwrap_or_default().into()),
                            ];
                            // Annotated only on legacy pages so pure-h2
                            // traces stay byte-identical to the committed
                            // baselines.
                            if page.legacy {
                                hs_args.push((
                                    "alpn",
                                    alpn.map(|p| p.to_string())
                                        .unwrap_or_else(|| "none".into())
                                        .into(),
                                ));
                            }
                            t.complete(
                                "tls.handshake",
                                "tls",
                                ms_us(hs_start),
                                ms_us(phase.ssl),
                                hs_args,
                            );
                            // The SAN check the pool's coalescing logic
                            // relies on: the presented certificate covers
                            // the requested name.
                            t.instant_at(
                                "tls.san_validated",
                                "tls",
                                ms_us(hs_start + phase.ssl),
                                vec![
                                    ("host", host.as_str().into()),
                                    (
                                        "covered",
                                        cert.as_ref()
                                            .map(|c| c.covers(&host))
                                            .unwrap_or(false)
                                            .into(),
                                    ),
                                ],
                            );
                        }
                    }
                    if legacy_h1 {
                        h1.connections_opened += 1;
                        // This connection opens because HTTP/1.1 cannot
                        // multiplex or coalesce. Before it enters the
                        // pool, ask each policy whether its *h2* rules
                        // would have merged the request onto an existing
                        // connection — Sander et al.'s redundant
                        // connections, the setups an all-h2 deployment
                        // would have avoided.
                        for (slot, (kind, _)) in REDUNDANCY_KINDS.iter().enumerate() {
                            if pool.redundant_if_h2(*kind, &host, &addrs, partition, |ch| {
                                env.colocated(ch, &host)
                            }) {
                                h1.redundant[slot] += 1;
                            }
                        }
                    }
                    if h3_eligible {
                        if let Some(c) = cert.as_ref() {
                            // The h2 response from an h3 origin
                            // advertises `alt-svc: h3` for its whole
                            // certificate scope, and a TLS 1.3
                            // handshake banks a session ticket the
                            // scope's QUIC handshakes can redeem.
                            h3_session.learn_alt_svc(c.serial, altsvc_suppressed);
                            if tls == TlsVersion::Tls13 {
                                h3_session.bank_ticket(host.as_str(), c.serial);
                            }
                        }
                    }
                    let conn = PooledConnection {
                        host: host.clone(),
                        ip,
                        available_set: addrs.clone(),
                        cert: cert.unwrap_or_else(|| {
                            // Plain-HTTP hosts have no certificate; a
                            // subject-only stand-in keeps the pool typed.
                            std::sync::Arc::new(
                                origin_tls::CertificateBuilder::new(host.clone()).build(),
                            )
                        }),
                        origin_set,
                        protocol: res.protocol,
                        partition,
                        bytes_transferred: 0,
                        in_flight: 0,
                        busy_until: 0.0,
                        closed: false,
                        quic: false,
                    };
                    let i = pool.insert(conn);
                    conn_open_us.push(ms_us(setup_start));
                    h1_sessions.push(None);
                    h3_conns.push(None);
                    if let Some(rec) = flight.as_deref_mut() {
                        rec.record(ms_us(setup_start), "conn.open", i as u64, host.as_str());
                    }
                    i
                }
            }
        };
        phase.blocked += fault_penalty_ms;
        if replayed_after_421 {
            reuse_label = "replay-421";
        }

        // Transfer phases.
        let conn = pool.get_mut(conn_idx);
        let warm_cwnd = if conn.bytes_transferred > 0 {
            link.cwnd_after(conn.bytes_transferred, INIT_CWND)
        } else {
            INIT_CWND
        };
        phase.send = 0.3;
        phase.wait = origin_webgen::dist::sample_wait_ms(rng);
        phase.receive = link.transfer_time(res.size, warm_cwnd).as_millis_f64();
        if let Some(f) = faults {
            // Bounded deterministic retry: each drop/corrupt verdict
            // costs an exponentially growing backoff plus one RTT to
            // retransmit, all charged to the receive phase. After
            // MAX_TRANSFER_RETRIES the transfer is force-delivered so
            // the crawl terminates under any profile.
            for attempt in 0..MAX_TRANSFER_RETRIES {
                let fate = f.injector.apply(&mut f.rng);
                if fate == PacketFate::Delivered {
                    break;
                }
                match fate {
                    PacketFate::Dropped => f.counts.drops += 1,
                    PacketFate::Corrupted => f.counts.corruptions += 1,
                    PacketFate::Delivered => unreachable!(),
                }
                f.counts.retries += 1;
                let backoff = RETRY_BASE_MS * f64::from(1u32 << attempt);
                let redo = backoff + link.rtt.as_millis_f64();
                if let Some(rec) = flight.as_deref_mut() {
                    rec.record(
                        ms_us(start + phase.total()),
                        "fault.backoff",
                        u64::from(attempt + 1),
                        host.as_str(),
                    );
                }
                if let Some(t) = tracer.as_deref_mut() {
                    t.set_tid(1 + conn_idx as u64);
                    t.complete(
                        "fault.backoff",
                        "fault",
                        ms_us(start + phase.total()),
                        ms_us(redo),
                        vec![
                            ("attempt", u64::from(attempt + 1).into()),
                            (
                                "fate",
                                match fate {
                                    PacketFate::Dropped => "dropped",
                                    PacketFate::Corrupted => "corrupted",
                                    PacketFate::Delivered => unreachable!(),
                                }
                                .into(),
                            ),
                        ],
                    );
                }
                phase.receive += redo;
                f.counts.backoff_events += 1;
                f.counts.backoff_us += ms_us(redo);
            }
        }
        conn.bytes_transferred += res.size;
        if self.config.kind.models_races() && !conn.multiplexes() {
            conn.busy_until = start + phase.total();
        }

        // Drive the sans-IO HTTP/1.1 machine through one full
        // request/response cycle for legacy traffic: heads, framing
        // and keep-alive are validated even though the simulation
        // only charges timings. Coalesced rides are excluded — only
        // the ideal (protocol-blind) models ever coalesce h1, and
        // they model structure, not wire protocol.
        // Requests riding a QUIC connection drive its QPACK
        // encoder/decoder pair (static/dynamic compression replaces
        // HPACK) and periodic connection-ID rotation. Only h3 pages
        // ever mark a connection `quic`, so this block is dead at
        // `h3_share = 0`.
        let mut h3_qpack: Option<H3RequestStats> = None;
        if conn.quic {
            h3.requests += 1;
            let sess = h3_conns[conn_idx].get_or_insert_with(H3Conn::new);
            h3_qpack = Some(sess.drive_request(host.as_str(), &res.path));
        }

        let mut h1_framing: Option<(&'static str, u64)> = None;
        if legacy_h1 {
            h1.requests += 1;
        }
        if legacy_h1 && !coalesced {
            if !new_connection {
                h1.keepalive_reuse += 1;
            }
            let sess =
                h1_sessions[conn_idx].get_or_insert_with(|| H1Connection::new(H1Role::Client));
            if sess.cycles_completed() > 0 {
                sess.start_next_cycle()
                    .expect("pooled HTTP/1.1 connection must be idle and kept alive");
            }
            sess.send(&H1Event::Request(H1Request::get(&res.path, host.as_str())))
                .expect("request head from Idle");
            sess.send(&H1Event::EndOfMessage)
                .expect("bodyless GET completes");
            if close_delimited_response(&res.path) {
                // No Content-Length: the body runs until the server
                // closes. The connection leaves the reusable pool —
                // `closed` frees its per-host slot, and the next
                // request to this host pays a fresh setup.
                sess.receive(&H1Event::Response(H1Response::close_delimited()))
                    .expect("response head after request");
                if res.size > 0 {
                    sess.receive(&H1Event::Data(res.size))
                        .expect("close-delimited body data");
                }
                sess.receive(&H1Event::ConnectionClosed)
                    .expect("close ends a close-delimited body");
                conn.closed = true;
                h1.close_delimited += 1;
                if let Some(rec) = flight {
                    rec.record(
                        ms_us(start + phase.total()),
                        H1Event::ConnectionClosed.code(),
                        sess.cycles_completed(),
                        host.as_str(),
                    );
                }
                h1_framing = Some(("close-delimited", sess.cycles_completed()));
            } else {
                sess.receive(&H1Event::Response(H1Response::with_content_length(
                    res.size,
                )))
                .expect("response head after request");
                if res.size > 0 {
                    sess.receive(&H1Event::Data(res.size)).expect("sized body");
                }
                sess.receive(&H1Event::EndOfMessage)
                    .expect("sized body completes");
                h1_framing = Some(("content-length", sess.cycles_completed()));
            }
        }

        let ip = conn.ip;

        if let Some(t) = tracer {
            // The request span and its phase children live on the
            // serving connection's track. Offsets accumulate in
            // quantised integer microseconds — the same arithmetic the
            // HAR export and metrics registry use — so the span end
            // equals the request's recorded end exactly.
            let conn_tid = 1 + conn_idx as u64;
            t.set_tid(conn_tid);
            let start_ts = ms_us(start);
            let mut args: Vec<(&'static str, origin_trace::ArgValue)> = vec![
                ("host", host.as_str().into()),
                ("protocol", res.protocol.label().into()),
                ("reuse", reuse_label.into()),
                ("conn", (conn_idx as u64).into()),
            ];
            if let Some(rule) = rule_label {
                args.push(("rule", rule.into()));
            }
            let phase_names = [
                "phase.blocked",
                "phase.dns",
                "phase.connect",
                "phase.ssl",
                "phase.send",
                "phase.wait",
                "phase.receive",
            ];
            t.complete(
                &format!("req {} {}", idx, host.as_str()),
                "request",
                start_ts,
                phase.total_us(),
                args,
            );
            // h3 requests additionally record the QPACK view: how
            // many bytes the header block and its table-mutating
            // instructions took on this connection's streams.
            if let Some(q) = h3_qpack {
                t.instant_at(
                    "h3.request",
                    "h3",
                    start_ts,
                    vec![
                        ("section_bytes", q.section_bytes.into()),
                        ("instruction_bytes", q.instruction_bytes.into()),
                        ("conn", (conn_idx as u64).into()),
                    ],
                );
            }
            // Legacy requests additionally record the h1 machine's
            // view: the response framing and which keep-alive cycle
            // of its connection this request rode.
            if let Some((framing, cycle)) = h1_framing {
                t.instant_at(
                    "h1.request",
                    "h1",
                    start_ts,
                    vec![
                        ("framing", framing.into()),
                        ("cycle", cycle.into()),
                        ("conn", (conn_idx as u64).into()),
                    ],
                );
            }
            let mut off = start_ts;
            for (name, dur) in phase_names.iter().zip(phase.quantised_us()) {
                if dur > 0 {
                    t.complete(name, "phase", off, dur, Vec::new());
                }
                off += dur;
            }
        }

        RequestTiming {
            resource_index: idx,
            host,
            ip,
            asn: if ip == placeholder_ip {
                asn
            } else {
                env.asn_of_ip(&ip).max(asn)
            },
            start,
            phase,
            did_dns,
            new_connection,
            coalesced,
            protocol: res.protocol,
            cert_issuer,
            secure: res.secure,
            extra_connections,
            extra_dns,
        }
    }
}

/// Open one QUIC connection in a certificate scope that has already
/// advertised h3 this visit. QUIC folds transport and TLS
/// establishment into one exchange, so there is no TCP round trip:
/// the whole handshake cost (0-RTT resumption, full 1-RTT, or the
/// anti-amplification stall a bloated chain forces) lands in the
/// `ssl` phase and `connect` stays zero. The pooled connection
/// carries no ORIGIN set — RFC 8336 frames are h2-only — so SAN/IP
/// matching alone gates coalescing onto it.
#[allow(clippy::too_many_arguments)] // one connection, its world, and an observer
fn open_quic_connection(
    cert: std::sync::Arc<origin_tls::Certificate>,
    host: &origin_dns::DnsName,
    ip: IpAddr,
    addrs: &std::sync::Arc<[IpAddr]>,
    partition: PoolPartition,
    protocol: Protocol,
    setup_start: f64,
    link: &origin_netsim::LinkProfile,
    rng: &mut SimRng,
    pool: &mut ConnectionPool,
    conn_open_us: &mut Vec<u64>,
    h1_sessions: &mut Vec<Option<H1Connection>>,
    h3_conns: &mut Vec<Option<H3Conn>>,
    h3_session: &mut H3Session,
    phase: &mut Phase,
    cert_issuer: &mut Option<String>,
    tracer: Option<&mut origin_trace::Tracer>,
    flight: Option<&mut origin_obs::FlightRecorder>,
) -> usize {
    let outcome = h3_session.connect(host.as_str(), cert.serial, cert.wire_size(), ip, link, rng);
    phase.connect = 0.0;
    phase.ssl = outcome.cost.as_millis_f64();
    *cert_issuer = Some(cert.issuer.clone());
    if let Some(t) = tracer {
        let conn_no = pool.len();
        let conn_tid = 1 + conn_no as u64;
        t.name_thread(conn_tid, &format!("conn {} {}", conn_no, host.as_str()));
        t.set_tid(conn_tid);
        t.complete(
            "quic.handshake",
            "tls",
            ms_us(setup_start),
            ms_us(phase.ssl),
            vec![
                ("mode", outcome.mode.label().into()),
                ("sni", host.as_str().into()),
                ("issuer", cert.issuer.clone().into()),
                (
                    "amplification_rtts",
                    u64::from(outcome.amplification_rtts).into(),
                ),
                ("cross_host", outcome.cross_host.into()),
            ],
        );
        // The same SAN check every TCP+TLS setup records: h3
        // coalescing hangs off certificate coverage exactly like h2's.
        t.instant_at(
            "tls.san_validated",
            "tls",
            ms_us(setup_start + phase.ssl),
            vec![
                ("host", host.as_str().into()),
                ("covered", cert.covers(host).into()),
            ],
        );
    }
    let i = pool.insert(PooledConnection {
        host: host.clone(),
        ip,
        available_set: addrs.clone(),
        cert,
        origin_set: None,
        protocol,
        partition,
        bytes_transferred: 0,
        in_flight: 0,
        busy_until: 0.0,
        closed: false,
        quic: true,
    });
    conn_open_us.push(ms_us(setup_start));
    h1_sessions.push(None);
    h3_conns.push(None);
    if let Some(rec) = flight {
        rec.record(ms_us(setup_start), "quic.open", i as u64, host.as_str());
    }
    i
}

/// Quantise simulated milliseconds to integer microseconds for trace
/// timestamps — identical to [`origin_web::har::ms_to_us`] and
/// `SimDuration::from_millis_f64`, keeping spans, HAR and metrics in
/// exact agreement.
fn ms_us(ms: f64) -> u64 {
    origin_web::har::ms_to_us(ms)
}

/// The shared empty address set for requests that never resolve
/// (N/A-protocol skips, NXDOMAIN, ORIGIN-frame-trusted coalescing).
/// One process-wide allocation instead of one per request.
fn empty_addrs() -> std::sync::Arc<[IpAddr]> {
    static EMPTY: std::sync::OnceLock<std::sync::Arc<[IpAddr]>> = std::sync::OnceLock::new();
    EMPTY.get_or_init(|| std::sync::Arc::new([])).clone()
}

/// Does a legacy origin serve this resource with a close-delimited
/// body (no `Content-Length`)? FNV-1a over the path picks roughly one
/// response in sixteen — a pure function of the page, so every thread
/// count and every visit agrees on which connections tear down.
fn close_delimited_response(path: &str) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h & 15 == 0
}

/// Upper bounds (inclusive) for the per-page connection histogram.
const CONNS_PER_PAGE_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32];

/// Derive `browser.*` counters and `sim.*` phase totals from one
/// completed page load.
fn record_page_metrics(load: &PageLoad, metrics: &mut origin_metrics::Registry) {
    let mut opened = 0u64;
    let mut coalesced = 0u64;
    let mut pool_reuse = 0u64;
    let mut dns_queries = 0u64;
    // Phase totals accumulate locally (integer microseconds, one
    // per-request quantisation each — the same arithmetic as recording
    // them one by one) and hit the registry's string-keyed maps once
    // per page instead of five times per request.
    let mut dns_t = SimDuration::ZERO;
    let mut connect_t = SimDuration::ZERO;
    let mut tls_t = SimDuration::ZERO;
    let mut transfer_t = SimDuration::ZERO;
    let mut blocked_t = SimDuration::ZERO;
    for r in &load.requests {
        opened += r.new_connection as u64 + r.extra_connections as u64;
        coalesced += r.coalesced as u64;
        // A request that neither opened nor coalesced rode an existing
        // same-host connection (failed N/A requests use no network).
        pool_reuse += (!r.new_connection && !r.coalesced && r.protocol != Protocol::NA) as u64;
        dns_queries += r.did_dns as u64 + r.extra_dns as u64;
        dns_t += SimDuration::from_millis_f64(r.phase.dns);
        connect_t += SimDuration::from_millis_f64(r.phase.connect);
        tls_t += SimDuration::from_millis_f64(r.phase.ssl);
        transfer_t += SimDuration::from_millis_f64(r.phase.send + r.phase.wait + r.phase.receive);
        blocked_t += SimDuration::from_millis_f64(r.phase.blocked);
    }
    let n = load.requests.len() as u64;
    metrics.record_phase_n("sim.dns", n, dns_t);
    metrics.record_phase_n("sim.connect", n, connect_t);
    metrics.record_phase_n("sim.tls", n, tls_t);
    metrics.record_phase_n("sim.transfer", n, transfer_t);
    metrics.record_phase_n("sim.blocked", n, blocked_t);
    metrics.add("browser.requests", load.requests.len() as u64);
    metrics.add("browser.connections_opened", opened);
    metrics.add("browser.coalesced_requests", coalesced);
    metrics.add("browser.pool_reuse", pool_reuse);
    metrics.add("browser.dns_queries", dns_queries);
    metrics.observe(
        "browser.connections_per_page",
        CONNS_PER_PAGE_BOUNDS,
        opened,
    );
    metrics.record_phase("sim.page", SimDuration::from_millis_f64(load.plt()));
}

/// Derive one visit's streaming observation from a completed load.
/// Everything written is a pure function of the page, the load, and
/// the visit's fault delta — the same inputs the metrics recording
/// reads — so the observation is shard-independent by the same
/// argument. Exemplar span references are minted with
/// [`origin_trace::span_ref`] in the visit's namespace: the trace
/// process is the site rank, the low bits are the resource index, so
/// `repro trace --site <rank>` shows the span `req <index> <host>`
/// the exemplar points at.
fn observe_visit(
    v: &mut origin_obs::VisitObs,
    page: &Page,
    load: &PageLoad,
    h1: &H1Stats,
    faults: Option<&FaultCounts>,
) {
    let rank = load.rank;
    v.rank = rank;
    let mut plt_end = 0u64;
    let mut plt_idx = 0usize;
    for r in &load.requests {
        let idx = r.resource_index;
        let span = origin_trace::span_ref(rank as u64, idx as u64);
        v.requests += 1;
        v.coalesced_requests += u64::from(r.coalesced);
        v.connections_opened += r.new_connection as u64 + u64::from(r.extra_connections);
        if r.protocol == Protocol::NA {
            continue;
        }
        let [blocked, dns, connect, ssl, ..] = r.phase.quantised_us();
        if r.new_connection {
            let handshake = connect + ssl;
            if handshake > 0 {
                v.handshakes
                    .push((r.start_us() + blocked + dns, handshake, span));
            }
        }
        v.bytes.push((r.end_us(), page.resources[idx].size, span));
        if r.end_us() > plt_end {
            plt_end = r.end_us();
            plt_idx = idx;
        }
    }
    v.plt_us = load.plt_us();
    v.plt_span = origin_trace::span_ref(rank as u64, plt_idx as u64);
    v.measured_tls = load.tls_connections();
    v.h1_connections = h1.connections_opened;
    v.h1_requests = h1.requests;
    v.h1_redundant = h1.redundant;
    if let Some(delta) = faults {
        let events =
            delta.misdirected_421 + delta.middlebox_teardowns + delta.drops + delta.corruptions;
        v.fault_misdirected_421 = delta.misdirected_421;
        v.fault_events = events;
        // Recovery is bounded by construction — every injected fault
        // is replayed, reconnected, or force-delivered within
        // MAX_TRANSFER_RETRIES — so today every event counts as
        // recovered and the SLO gate pins the rate at 1.0. A future
        // failure mode that gives up would diverge here.
        v.fault_recoveries = events;
    }
}

/// Fold one visit's HTTP/1.1 counters into the registry. Zero values
/// are skipped — `Registry::add` materializes keys, and a pure-h2
/// crawl (legacy share 0) must serialize exactly as it did before the
/// mixed-protocol universe existed.
fn record_h1_metrics(stats: &H1Stats, metrics: &mut origin_metrics::Registry) {
    for (name, value) in [
        ("h1.requests", stats.requests),
        ("h1.connections_opened", stats.connections_opened),
        ("h1.keepalive_reuse", stats.keepalive_reuse),
        ("h1.close_delimited", stats.close_delimited),
        ("h1.pages", stats.pages),
    ] {
        if value > 0 {
            metrics.add(name, value);
        }
    }
    for (slot, (_, name)) in REDUNDANCY_KINDS.iter().enumerate() {
        if stats.redundant[slot] > 0 {
            metrics.add(name, stats.redundant[slot]);
        }
    }
}

/// Fold one visit's HTTP/3 counters into the registry. Zero values
/// are skipped — `Registry::add` materializes keys, and a pure-h2
/// crawl (h3 share 0) must serialize exactly as it did before the
/// QUIC path existed.
fn record_h3_metrics(stats: &H3Stats, metrics: &mut origin_metrics::Registry) {
    for (name, value) in [
        ("h3.pages", stats.pages),
        ("h3.requests", stats.requests),
        ("h3.connections", stats.counts.connections),
        ("h3.handshakes_1rtt", stats.counts.handshakes_1rtt),
        ("h3.handshakes_0rtt", stats.counts.handshakes_0rtt),
        ("h3.zero_rtt_rejected", stats.counts.zero_rtt_rejected),
        ("h3.tickets_issued", stats.counts.tickets_issued),
        ("h3.resumed_cross_host", stats.counts.resumed_cross_host),
        ("h3.altsvc_learned", stats.counts.altsvc_learned),
        ("h3.altsvc_suppressed", stats.counts.altsvc_suppressed),
        ("h3.amplification_rtts", stats.counts.amplification_rtts),
        ("h3.addr_validated_skips", stats.counts.addr_validated_skips),
        ("h3.qpack_instructions", stats.qpack_instructions),
        ("h3.qpack_evictions", stats.qpack_evictions),
        ("h3.cids_issued", stats.cids_issued),
        ("h3.cids_retired", stats.cids_retired),
    ] {
        if value > 0 {
            metrics.add(name, value);
        }
    }
}

/// Fold one visit's fault-counter deltas into the registry. Zero
/// values are skipped — `Registry::add` materializes keys, and a
/// faulted crawl whose profile injected nothing must serialize exactly
/// like a clean one.
fn record_fault_metrics(delta: &FaultCounts, metrics: &mut origin_metrics::Registry) {
    for (name, value) in [
        ("fault.misdirected_421", delta.misdirected_421),
        ("fault.pool_evictions", delta.pool_evictions),
        ("fault.middlebox_teardowns", delta.middlebox_teardowns),
        ("fault.origin_suppressed", delta.origin_suppressed),
        ("fault.drops", delta.drops),
        ("fault.corruptions", delta.corruptions),
        ("fault.retries", delta.retries),
    ] {
        if value > 0 {
            metrics.add(name, value);
        }
    }
    if delta.backoff_events > 0 {
        metrics.record_phase_n(
            "fault.backoff",
            delta.backoff_events,
            SimDuration::from_micros(delta.backoff_us),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::UniverseEnv;
    use origin_webgen::{Dataset, DatasetConfig};

    fn dataset() -> Dataset {
        Dataset::generate(DatasetConfig {
            sites: 120,
            tranco_total: 500_000,
            seed: 11,
            ..Default::default()
        })
    }

    fn load_first_page(kind: BrowserKind, d: &Dataset) -> PageLoad {
        let site = d
            .sites()
            .iter()
            .find(|s| !s.failed)
            .expect("a successful site")
            .clone();
        let page = d.page_for(&site);
        let mut env = UniverseEnv::new(d);
        env.flush_dns();
        let loader = PageLoader::new(kind);
        let mut rng = SimRng::seed_from_u64(99);
        loader.load(&page, &mut env, &mut rng)
    }

    #[test]
    fn load_produces_timing_per_resource() {
        let d = dataset();
        let site = d.sites().iter().find(|s| !s.failed).unwrap().clone();
        let page = d.page_for(&site);
        let pl = load_first_page(BrowserKind::Chromium, &d);
        assert_eq!(pl.requests.len(), page.resources.len());
        assert!(pl.plt() > 0.0);
        // Root request always opens a connection and queries DNS.
        assert!(pl.requests[0].new_connection);
        assert!(pl.requests[0].did_dns);
    }

    #[test]
    fn dns_once_per_host() {
        let d = dataset();
        let pl = load_first_page(BrowserKind::Chromium, &d);
        // Network DNS queries ≤ distinct hosts (cache hits after the
        // first query per host).
        let distinct_hosts: std::collections::HashSet<_> =
            pl.requests.iter().map(|r| r.host.clone()).collect();
        let base_dns: u64 = pl.requests.iter().filter(|r| r.did_dns).count() as u64;
        assert!(base_dns <= distinct_hosts.len() as u64);
    }

    #[test]
    fn same_host_requests_reuse_connections() {
        let d = dataset();
        let pl = load_first_page(BrowserKind::Chromium, &d);
        // New H2 connections ≤ distinct hosts + races.
        let distinct_hosts: std::collections::HashSet<_> =
            pl.requests.iter().map(|r| r.host.clone()).collect();
        let h2_new: u64 = pl
            .requests
            .iter()
            .filter(|r| r.new_connection && r.protocol == Protocol::H2)
            .count() as u64;
        assert!(h2_new <= distinct_hosts.len() as u64);
    }

    #[test]
    fn ideal_origin_fewer_connections_than_chromium() {
        let d1 = dataset();
        let chromium = load_first_page(BrowserKind::Chromium, &d1);
        let d2 = dataset();
        let ideal = load_first_page(BrowserKind::IdealOrigin, &d2);
        assert!(
            ideal.tls_connections() <= chromium.tls_connections(),
            "ideal {} vs chromium {}",
            ideal.tls_connections(),
            chromium.tls_connections()
        );
        assert!(
            ideal.dns_queries() <= chromium.dns_queries(),
            "ideal {} vs chromium {}",
            ideal.dns_queries(),
            chromium.dns_queries()
        );
        assert!(ideal.coalesced_requests() >= chromium.coalesced_requests());
    }

    #[test]
    fn ideal_ip_between_measured_and_origin() {
        let d1 = dataset();
        let measured = load_first_page(BrowserKind::Chromium, &d1);
        let d2 = dataset();
        let ideal_ip = load_first_page(BrowserKind::IdealIp, &d2);
        let d3 = dataset();
        let ideal_origin = load_first_page(BrowserKind::IdealOrigin, &d3);
        assert!(ideal_ip.tls_connections() <= measured.tls_connections());
        assert!(ideal_origin.tls_connections() <= ideal_ip.tls_connections());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let d1 = dataset();
        let a = load_first_page(BrowserKind::Firefox, &d1);
        let d2 = dataset();
        let b = load_first_page(BrowserKind::Firefox, &d2);
        assert_eq!(a, b);
    }

    #[test]
    fn coalesced_requests_have_no_setup_phases() {
        let d = dataset();
        let sites: Vec<_> = d
            .sites()
            .iter()
            .filter(|s| !s.failed)
            .take(10)
            .cloned()
            .collect();
        let mut total_coalesced = 0;
        for site in sites {
            let page = d.page_for(&site);
            let mut env = UniverseEnv::new(&d);
            env.flush_dns();
            let loader = PageLoader::new(BrowserKind::IdealOrigin);
            let mut rng = SimRng::seed_from_u64(99);
            let pl = loader.load(&page, &mut env, &mut rng);
            for r in &pl.requests {
                if r.coalesced {
                    assert_eq!(r.phase.connect, 0.0);
                    assert_eq!(r.phase.ssl, 0.0);
                    assert!(!r.new_connection);
                }
            }
            total_coalesced += pl.coalesced_requests();
        }
        assert!(
            total_coalesced > 0,
            "ideal origin should coalesce across 10 pages"
        );
    }

    #[test]
    fn traced_load_is_identical_to_untraced() {
        // Tracing observes the simulation without drawing from its
        // RNG, so a traced load must return the same PageLoad — this
        // is what lets `repro trace` reproduce exactly the visit the
        // crawl measured.
        let d1 = dataset();
        let untraced = load_first_page(BrowserKind::IdealOrigin, &d1);
        let d2 = dataset();
        let site = d2
            .sites()
            .iter()
            .find(|s| !s.failed)
            .expect("a successful site")
            .clone();
        let page = d2.page_for(&site);
        let mut env = UniverseEnv::new(&d2);
        env.flush_dns();
        let loader = PageLoader::new(BrowserKind::IdealOrigin);
        let mut rng = SimRng::seed_from_u64(99);
        let mut tracer = origin_trace::Tracer::new();
        tracer.begin_visit(site.rank as u64, "test visit");
        let mut metrics = origin_metrics::Registry::new();
        let traced = loader.load_traced(&page, &mut env, &mut rng, Some(&mut metrics), &mut tracer);
        assert_eq!(traced, untraced);

        // The HAR export's PLT and the metrics registry's per-visit
        // sim.page phase are the same integer-microsecond value.
        let page_phase = metrics.phase("sim.page").expect("sim.page recorded");
        assert_eq!(page_phase.total.as_micros(), traced.plt_us());

        // Every successful request produced a span on its serving
        // connection's track, and coalesced requests are linked to the
        // reused connection by a flow-start/flow-end pair.
        // Served requests and NXDOMAIN failures get spans; skipped
        // (N/A-protocol, no-DNS) requests get only an instant.
        let req_spans = traced
            .requests
            .iter()
            .filter(|r| r.protocol != Protocol::NA || r.did_dns)
            .count();
        let span_count = tracer
            .events()
            .iter()
            .filter(|e| {
                e.cat == "request" && matches!(e.kind, origin_trace::EventKind::Complete { .. })
            })
            .count();
        assert_eq!(span_count, req_spans);
        let coalesced = traced.coalesced_requests() as usize;
        assert!(coalesced > 0, "ideal-origin visit should coalesce");
        let flow_starts = tracer
            .events()
            .iter()
            .filter(|e| matches!(e.kind, origin_trace::EventKind::FlowStart { .. }))
            .count();
        let flow_ends = tracer
            .events()
            .iter()
            .filter(|e| matches!(e.kind, origin_trace::EventKind::FlowEnd { .. }))
            .count();
        assert_eq!(flow_starts, coalesced);
        assert_eq!(flow_ends, coalesced);

        // Request span ends equal the quantised request ends the HAR
        // export reports: spans, HAR, and metrics tell one story.
        let max_span_end = tracer
            .events()
            .iter()
            .filter(|e| e.cat == "request")
            .filter_map(|e| match e.kind {
                origin_trace::EventKind::Complete { dur_us } => Some(e.ts_us + dur_us),
                _ => None,
            })
            .max()
            .expect("at least one request span");
        assert_eq!(max_span_end, traced.plt_us());
    }

    #[test]
    fn pure_h2_visit_records_no_h1_metrics() {
        // The mixed-protocol machinery must be invisible on a default
        // (legacy share 0) universe: no `h1.*` key may materialize,
        // or the committed metrics baselines would change shape.
        let d = dataset();
        let site = d.sites().iter().find(|s| !s.failed).unwrap().clone();
        let page = d.page_for(&site);
        assert!(!page.legacy);
        let mut env = UniverseEnv::new(&d);
        env.flush_dns();
        let loader = PageLoader::new(BrowserKind::Firefox);
        let mut rng = SimRng::seed_from_u64(99);
        let mut metrics = origin_metrics::Registry::new();
        loader.load_instrumented(&page, &mut env, &mut rng, Some(&mut metrics));
        assert!(metrics.counters().all(|(name, _)| !name.starts_with("h1.")));
        assert!(metrics.counters().all(|(name, _)| !name.starts_with("h3.")));
    }

    #[test]
    fn h3_pages_upgrade_connections_to_quic() {
        let d = Dataset::generate(DatasetConfig {
            sites: 40,
            tranco_total: 500_000,
            seed: 11,
            legacy_share: 0.0,
            h3_share: 1.0,
        });
        let mut env = UniverseEnv::new(&d);
        let loader = PageLoader::new(BrowserKind::Firefox);
        let mut metrics = origin_metrics::Registry::new();
        let mut arena = VisitArena::new();
        let mut pages = 0u64;
        for site in d.sites().iter().filter(|s| !s.failed).take(12) {
            let page = d.page_for(site);
            assert!(page.h3, "share 1.0 makes every site deploy h3");
            env.flush_dns();
            let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
            let load = loader.load_faulted_with(
                &page,
                &mut env,
                &mut rng,
                None,
                Some(&mut metrics),
                None,
                &mut arena,
            );
            pages += 1;
            arena.recycle(load);
        }
        assert_eq!(metrics.counter("h3.pages"), pages);
        // Alt-Svc is learned from the first (h2) connection per cert
        // scope; later New decisions in a known scope open QUIC.
        assert!(metrics.counter("h3.altsvc_learned") > 0);
        assert!(metrics.counter("h3.connections") > 0);
        // Every QUIC connection ran exactly one handshake.
        assert_eq!(
            metrics.counter("h3.connections"),
            metrics.counter("h3.handshakes_1rtt") + metrics.counter("h3.handshakes_0rtt"),
        );
        // 0-RTT attempts can only spend tickets that TLS 1.3 or a
        // prior full handshake banked.
        assert!(
            metrics.counter("h3.handshakes_0rtt") + metrics.counter("h3.zero_rtt_rejected")
                <= metrics.counter("h3.tickets_issued")
        );
        // Requests rode the QUIC connections and drove QPACK.
        assert!(metrics.counter("h3.requests") > 0);
        assert!(metrics.counter("h3.qpack_instructions") > 0);
        assert!(metrics.counter("h3.cids_issued") >= metrics.counter("h3.connections"));
    }

    #[test]
    fn h3_visit_is_deterministic_and_arena_invariant() {
        let d = Dataset::generate(DatasetConfig {
            sites: 20,
            tranco_total: 500_000,
            seed: 7,
            legacy_share: 0.0,
            h3_share: 1.0,
        });
        let loader = PageLoader::new(BrowserKind::Firefox);
        let run = |arena: &mut VisitArena| {
            let mut env = UniverseEnv::new(&d);
            let mut metrics = origin_metrics::Registry::new();
            let mut digest = Vec::new();
            for site in d.sites().iter().filter(|s| !s.failed).take(8) {
                let page = d.page_for(site);
                env.flush_dns();
                let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
                let load = loader.load_faulted_with(
                    &page,
                    &mut env,
                    &mut rng,
                    None,
                    Some(&mut metrics),
                    None,
                    arena,
                );
                digest.push((load.plt_us(), load.request_count()));
                arena.recycle(load);
            }
            (digest, metrics.to_json())
        };
        let fresh = run(&mut VisitArena::new());
        let mut reused = VisitArena::new();
        let first = run(&mut reused);
        let second = run(&mut reused);
        assert_eq!(fresh, first);
        assert_eq!(first, second, "arena reuse must not leak h3 state");
    }

    #[test]
    fn legacy_pages_drive_the_h1_machine() {
        let d = Dataset::generate(DatasetConfig {
            sites: 40,
            tranco_total: 500_000,
            seed: 11,
            legacy_share: 1.0,
            h3_share: 0.0,
        });
        let mut env = UniverseEnv::new(&d);
        let loader = PageLoader::new(BrowserKind::Firefox);
        let mut metrics = origin_metrics::Registry::new();
        let mut arena = VisitArena::new();
        let mut h11_requests = 0u64;
        let mut coalesced_h1 = 0u64;
        let mut pages = 0u64;
        for site in d.sites().iter().filter(|s| !s.failed).take(12) {
            let page = d.page_for(site);
            assert!(page.legacy, "share 1.0 makes every site legacy");
            env.flush_dns();
            let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
            let load = loader.load_faulted_with(
                &page,
                &mut env,
                &mut rng,
                None,
                Some(&mut metrics),
                None,
                &mut arena,
            );
            for r in &load.requests {
                if r.protocol == Protocol::H11 {
                    h11_requests += 1;
                    coalesced_h1 += r.coalesced as u64;
                }
            }
            pages += 1;
            arena.recycle(load);
        }
        // Every HTTP/1.1 request that reached the network drove the
        // machine exactly once: no request is double-counted.
        assert!(metrics.counter("h1.requests") > 0);
        assert_eq!(metrics.counter("h1.requests"), h11_requests);
        assert_eq!(
            metrics.counter("h1.requests"),
            metrics.counter("h1.connections_opened")
                + metrics.counter("h1.keepalive_reuse")
                + coalesced_h1,
            "every h1 request either opened, kept alive, or coalesced"
        );
        assert_eq!(metrics.counter("h1.pages"), pages);
        // Domain-sharded legacy pages open connections an h2
        // deployment would have merged; any event redundant under
        // Chromium's strict rules is redundant under the ideal-ORIGIN
        // model too (its conditions are a superset trigger).
        assert!(metrics.counter("h1.redundant.ideal_origin") > 0);
        assert!(
            metrics.counter("h1.redundant.ideal_origin")
                >= metrics.counter("h1.redundant.chromium")
        );
        // ~1/16 of paths draw a close-delimited response; across a
        // dozen legacy sites some connection must have torn down.
        assert!(metrics.counter("h1.close_delimited") > 0);
    }

    #[test]
    fn legacy_load_is_deterministic_and_arena_invariant() {
        let d = Dataset::generate(DatasetConfig {
            sites: 20,
            tranco_total: 500_000,
            seed: 7,
            legacy_share: 0.5,
            h3_share: 0.0,
        });
        let loader = PageLoader::new(BrowserKind::Firefox);
        let run = |arena: &mut VisitArena| {
            let mut env = UniverseEnv::new(&d);
            let mut metrics = origin_metrics::Registry::new();
            let mut loads = Vec::new();
            for site in d.sites().iter().filter(|s| !s.failed).take(8) {
                let page = d.page_for(site);
                env.flush_dns();
                let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
                loads.push(loader.load_faulted_with(
                    &page,
                    &mut env,
                    &mut rng,
                    None,
                    Some(&mut metrics),
                    None,
                    arena,
                ));
            }
            (loads, metrics.to_json())
        };
        let (a_loads, a_json) = run(&mut VisitArena::new());
        let mut arena = VisitArena::new();
        let (b_loads, b_json) = run(&mut arena);
        let (c_loads, c_json) = run(&mut arena); // warm arena, reused sessions cleared
        assert_eq!(a_loads, b_loads);
        assert_eq!(a_json, b_json);
        assert_eq!(a_loads, c_loads);
        assert_eq!(a_json, c_json);
    }

    /// Arena reuse must be observationally invisible: a worker that
    /// recycles one [`VisitArena`] across visits produces `PageLoad`s
    /// identical to a worker that builds a fresh arena per visit.
    #[test]
    fn arena_reuse_is_output_invisible() {
        let d = dataset();
        let sites: Vec<_> = d
            .sites()
            .iter()
            .filter(|s| !s.failed)
            .take(8)
            .cloned()
            .collect();
        let loader = PageLoader::new(BrowserKind::Chromium);

        let mut env = UniverseEnv::new(&d);
        let mut fresh = Vec::new();
        for site in &sites {
            let page = d.page_for(site);
            env.flush_dns();
            let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
            fresh.push(loader.load_faulted_with(
                &page,
                &mut env,
                &mut rng,
                None,
                None,
                None,
                &mut VisitArena::new(),
            ));
        }

        let mut env = UniverseEnv::new(&d);
        let mut arena = VisitArena::new();
        for (site, expect) in sites.iter().zip(&fresh) {
            let page = d.page_for(site);
            env.flush_dns();
            let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
            let load =
                loader.load_faulted_with(&page, &mut env, &mut rng, None, None, None, &mut arena);
            assert_eq!(&load, expect);
            arena.recycle(load);
        }
    }
}
