//! The browser connection pool.

use crate::policy::BrowserKind;
use origin_dns::DnsName;
use origin_h2::OriginSet;
use origin_tls::Certificate;
use origin_web::{FetchMode, Protocol};
use std::net::IpAddr;

/// Connection pools are partitioned by credentials mode: a CORS-
/// anonymous or programmatic (XHR/fetch) request never rides a
/// credentialed element-fetch connection — the behaviour that capped
/// the paper's §5.3 deployment gains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolPartition {
    /// Credentialed element fetches.
    Default,
    /// CORS-anonymous fetches (fonts, `crossorigin=anonymous`).
    Anonymous,
    /// Programmatic XHR / `fetch()` traffic.
    Programmatic,
}

impl From<FetchMode> for PoolPartition {
    fn from(m: FetchMode) -> Self {
        match m {
            FetchMode::Normal => PoolPartition::Default,
            FetchMode::CorsAnonymous => PoolPartition::Anonymous,
            FetchMode::XhrFetch => PoolPartition::Programmatic,
        }
    }
}

/// One pooled connection.
#[derive(Debug, Clone)]
pub struct PooledConnection {
    /// Hostname the connection was opened for (TLS SNI).
    pub host: DnsName,
    /// The established (connected) address.
    pub ip: IpAddr,
    /// The full DNS answer set observed when connecting — Firefox
    /// keeps this *available set* and uses it for transitive
    /// matching; Chromium keeps only `ip`.
    pub available_set: Vec<IpAddr>,
    /// Certificate the server presented.
    pub cert: Certificate,
    /// Origin set advertised via ORIGIN frame, if any.
    pub origin_set: Option<OriginSet>,
    /// Negotiated protocol.
    pub protocol: Protocol,
    /// Pool partition.
    pub partition: PoolPartition,
    /// Bytes transferred so far (drives the warm-cwnd estimate).
    pub bytes_transferred: u64,
    /// Requests in flight (H1.1 connections serve one at a time).
    pub in_flight: u32,
    /// Time (ms from navigation start) this connection finishes its
    /// current response — HTTP/1.1 connections serialize requests.
    pub busy_until: f64,
}

impl PooledConnection {
    /// Can this connection multiplex (HTTP/2)?
    pub fn multiplexes(&self) -> bool {
        self.protocol == Protocol::H2
    }
}

/// How a request got (or didn't get) a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseDecision {
    /// Reuse an existing same-host connection (ordinary keep-alive).
    SameHost(usize),
    /// Coalesce onto a connection opened for a different host.
    Coalesce(usize),
    /// Open a new connection.
    New,
}

/// The pool and its reuse logic.
#[derive(Debug, Default)]
pub struct ConnectionPool {
    conns: Vec<PooledConnection>,
}

impl ConnectionPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// All connections.
    pub fn connections(&self) -> &[PooledConnection] {
        &self.conns
    }

    /// Mutable access to one connection.
    pub fn get_mut(&mut self, idx: usize) -> &mut PooledConnection {
        &mut self.conns[idx]
    }

    /// Insert a connection; returns its index.
    pub fn insert(&mut self, conn: PooledConnection) -> usize {
        self.conns.push(conn);
        self.conns.len() - 1
    }

    /// Decide how a request to `host` (with DNS answer `addrs`, in
    /// `partition`) gets a connection under `policy`.
    ///
    /// `colocated(conn_host)` must answer whether the server behind a
    /// pooled connection can serve `host` without a 421; it
    /// represents the server-side half of the decision that the
    /// client cannot see but experiences as an error + retry.
    #[allow(clippy::too_many_arguments)] // one decision, eight independent inputs
    pub fn decide(
        &self,
        policy: BrowserKind,
        host: &DnsName,
        addrs: &[IpAddr],
        partition: PoolPartition,
        max_h1_per_host: u32,
        start: f64,
        colocated: impl Fn(&DnsName) -> bool,
    ) -> ReuseDecision {
        // The §4 ideal models are structural: they count connections
        // per service and are blind to pool partitions, HTTP/1.1
        // serialization, and timing — "the number of TLS handshakes
        // is equal to the number of separate services" (§4.2).
        let is_ideal = matches!(policy, BrowserKind::IdealIp | BrowserKind::IdealOrigin);

        // 1. Same-host reuse (keep-alive): H2 always multiplexes; an
        //    H1.1 connection is only reusable when idle.
        let mut h1_same_host = 0u32;
        for (i, c) in self.conns.iter().enumerate() {
            if (!is_ideal && c.partition != partition) || &c.host != host {
                continue;
            }
            if c.multiplexes() || is_ideal {
                return ReuseDecision::SameHost(i);
            }
            h1_same_host += 1;
            if c.in_flight == 0 && c.busy_until <= start {
                return ReuseDecision::SameHost(i);
            }
        }
        if h1_same_host >= max_h1_per_host {
            // All six H1.1 slots busy: queue behind the least loaded
            // (modelled as same-host reuse with blocking charged by
            // the loader).
            if let Some((i, _)) = self
                .conns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.partition == partition && &c.host == host)
                .min_by(|(_, a), (_, b)| {
                    a.busy_until
                        .partial_cmp(&b.busy_until)
                        .expect("finite times")
                })
            {
                return ReuseDecision::SameHost(i);
            }
        }

        // 2. Cross-host coalescing (HTTP/2 only, same partition, cert
        //    must cover the new name, server must actually serve it).
        for (i, c) in self.conns.iter().enumerate() {
            if !is_ideal && (c.partition != partition || !c.multiplexes()) {
                continue;
            }
            // Real browsers require the connection's certificate to
            // cover the new name; the §4 ideal models assume the
            // least-effort SAN modifications have been applied.
            if !is_ideal && !c.cert.covers(host) {
                continue;
            }
            if !colocated(&c.host) {
                continue;
            }
            let ip_match = if policy.ip_transitive() {
                c.available_set.iter().any(|a| addrs.contains(a))
            } else {
                addrs.contains(&c.ip)
            };
            let origin_match = policy.uses_origin_frame()
                && c.origin_set
                    .as_ref()
                    .map(|s| s.allows_https_host(host.as_str()))
                    .unwrap_or(false);
            let allowed = match policy {
                BrowserKind::Chromium | BrowserKind::Firefox | BrowserKind::IdealIp => ip_match,
                BrowserKind::FirefoxOrigin => origin_match || ip_match,
                BrowserKind::IdealOrigin => {
                    // The model assumes perfect ORIGIN deployment:
                    // colocation itself implies an advertised origin.
                    true
                }
            };
            if allowed {
                return ReuseDecision::Coalesce(i);
            }
        }
        ReuseDecision::New
    }

    /// Name the policy rule that let `host` (DNS answer `addrs`)
    /// coalesce onto connection `idx` — for trace annotations, so a
    /// waterfall can say *why* a request rode a foreign connection.
    /// The checks mirror [`ConnectionPool::decide`]'s step 2, most
    /// specific first.
    pub fn explain_coalesce(
        &self,
        policy: BrowserKind,
        host: &DnsName,
        addrs: &[IpAddr],
        idx: usize,
    ) -> &'static str {
        let c = &self.conns[idx];
        if policy.uses_origin_frame()
            && c.origin_set
                .as_ref()
                .map(|s| s.allows_https_host(host.as_str()))
                .unwrap_or(false)
        {
            return "origin-frame";
        }
        if addrs.contains(&c.ip) {
            return "ip-exact";
        }
        if policy.ip_transitive() && c.available_set.iter().any(|a| addrs.contains(a)) {
            return "ip-transitive";
        }
        // Only IdealOrigin coalesces with no IP or ORIGIN evidence:
        // the §4 model assumes colocation itself implies reusability.
        "model-colocation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use origin_dns::record::v4;
    use origin_tls::CertificateBuilder;

    fn conn(host: &str, ip: IpAddr, set: Vec<IpAddr>, sans: &[&str]) -> PooledConnection {
        let mut b = CertificateBuilder::new(name(host));
        for s in sans {
            b = b.san(name(s));
        }
        PooledConnection {
            host: name(host),
            ip,
            available_set: set,
            cert: b.build(),
            origin_set: None,
            protocol: Protocol::H2,
            partition: PoolPartition::Default,
            bytes_transferred: 0,
            in_flight: 0,
            busy_until: 0.0,
        }
    }

    fn always(_: &DnsName) -> bool {
        true
    }

    #[test]
    fn same_host_h2_always_reuses() {
        let mut pool = ConnectionPool::new();
        pool.insert(conn("a.com", v4(1, 1, 1, 1), vec![v4(1, 1, 1, 1)], &[]));
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("a.com"),
            &[v4(9, 9, 9, 9)], // even with different DNS answer
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::SameHost(0));
    }

    #[test]
    fn chromium_requires_connected_ip() {
        let mut pool = ConnectionPool::new();
        // Connected to IPA; available set {IPA, IPB} (the §2.3 example).
        let ipa = v4(1, 1, 1, 1);
        let ipb = v4(2, 2, 2, 2);
        let ipc = v4(3, 3, 3, 3);
        pool.insert(conn(
            "www.a.com",
            ipa,
            vec![ipa, ipb],
            &["*.a.com", "cdn.a.com"],
        ));
        // Subresource's DNS answer {IPB, IPC}: Chromium misses…
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("cdn.a.com"),
            &[ipb, ipc],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New);
        // …Firefox's transitivity finds IPB in the available set.
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("cdn.a.com"),
            &[ipb, ipc],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
    }

    #[test]
    fn chromium_coalesces_on_exact_ip() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["*.a.com"]));
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("img.a.com"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
    }

    #[test]
    fn cert_coverage_is_mandatory() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &[])); // no SANs beyond subject
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("cdn.a.com"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New);
    }

    #[test]
    fn colocation_check_prevents_421_path() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["other.example"]));
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("other.example"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            |_| false, // server would 421
        );
        assert_eq!(d, ReuseDecision::New);
    }

    #[test]
    fn origin_frame_coalesces_without_ip_match() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        let mut c = conn("www.a.com", ip, vec![ip], &["third.party.com"]);
        c.origin_set = Some(OriginSet::from_hosts(["www.a.com", "third.party.com"]));
        pool.insert(c);
        // DNS answer for the third party has no overlap at all.
        let answer = [v4(7, 7, 7, 7)];
        let d = pool.decide(
            BrowserKind::FirefoxOrigin,
            &name("third.party.com"),
            &answer,
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
        // Plain Firefox (no ORIGIN support) opens a new connection.
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("third.party.com"),
            &answer,
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New);
    }

    #[test]
    fn partitions_do_not_mix() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("fonts.x.com", ip, vec![ip], &[]));
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("fonts.x.com"),
            &[ip],
            PoolPartition::Anonymous,
            6,
            0.0,
            always,
        );
        assert_eq!(
            d,
            ReuseDecision::New,
            "anonymous must not reuse default-pool conn"
        );
    }

    #[test]
    fn h1_busy_connection_not_reused_until_limit() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        let mut c = conn("old.x.com", ip, vec![ip], &[]);
        c.protocol = Protocol::H11;
        c.in_flight = 1;
        pool.insert(c);
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("old.x.com"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New, "busy H1.1 conn → open another");
        // At the limit, queue on the least-loaded.
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("old.x.com"),
            &[ip],
            PoolPartition::Default,
            1,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::SameHost(0));
    }

    #[test]
    fn ideal_origin_coalesces_on_colocation_alone() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["svc.example"]));
        let d = pool.decide(
            BrowserKind::IdealOrigin,
            &name("svc.example"),
            &[], // no DNS performed at all
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
    }
}
