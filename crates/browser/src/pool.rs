//! The browser connection pool.
//!
//! `decide` runs up to three times per simulated request, so the pool
//! keeps lookup indexes beside the connection list: hostnames are
//! interned into a pool-local [`HostTable`], each connection's SAN
//! list is pre-compiled at insert into exact-name and
//! wildcard-parent buckets, and DNS-answer addresses map to the
//! connections holding them. A decision then touches only the
//! connections that could possibly match instead of scanning
//! `conns × SANs`. [`ConnectionPool::decide_linear`] keeps the
//! original full-scan logic as the reference implementation; the
//! indexed path must (and, under `debug_assertions`, is checked to)
//! return exactly the same decision, which is what keeps every
//! downstream byte identical.

use crate::policy::BrowserKind;
use origin_dns::DnsName;
use origin_h2::OriginSet;
use origin_intern::{FxHashMap, HostId, HostTable};
use origin_tls::Certificate;
use origin_web::{FetchMode, Protocol};
use std::net::IpAddr;

/// Connection pools are partitioned by credentials mode: a CORS-
/// anonymous or programmatic (XHR/fetch) request never rides a
/// credentialed element-fetch connection — the behaviour that capped
/// the paper's §5.3 deployment gains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolPartition {
    /// Credentialed element fetches.
    Default,
    /// CORS-anonymous fetches (fonts, `crossorigin=anonymous`).
    Anonymous,
    /// Programmatic XHR / `fetch()` traffic.
    Programmatic,
}

impl From<FetchMode> for PoolPartition {
    fn from(m: FetchMode) -> Self {
        match m {
            FetchMode::Normal => PoolPartition::Default,
            FetchMode::CorsAnonymous => PoolPartition::Anonymous,
            FetchMode::XhrFetch => PoolPartition::Programmatic,
        }
    }
}

/// One pooled connection.
#[derive(Debug, Clone)]
pub struct PooledConnection {
    /// Hostname the connection was opened for (TLS SNI).
    pub host: DnsName,
    /// The established (connected) address.
    pub ip: IpAddr,
    /// The full DNS answer set observed when connecting — Firefox
    /// keeps this *available set* and uses it for transitive
    /// matching; Chromium keeps only `ip`.
    pub available_set: std::sync::Arc<[IpAddr]>,
    /// Certificate the server presented.
    pub cert: std::sync::Arc<Certificate>,
    /// Origin set advertised via ORIGIN frame, if any.
    pub origin_set: Option<OriginSet>,
    /// Negotiated protocol.
    pub protocol: Protocol,
    /// Pool partition.
    pub partition: PoolPartition,
    /// Bytes transferred so far (drives the warm-cwnd estimate).
    pub bytes_transferred: u64,
    /// Requests in flight (H1.1 connections serve one at a time).
    pub in_flight: u32,
    /// Time (ms from navigation start) this connection finishes its
    /// current response — HTTP/1.1 connections serialize requests.
    pub busy_until: f64,
    /// The peer closed the connection (an HTTP/1.1 close-delimited
    /// response or `Connection: close`). A closed connection is never
    /// reused and no longer occupies a per-host slot; always `false`
    /// for h2 connections, so the pure-h2 universe never consults it.
    pub closed: bool,
    /// The connection runs over QUIC (an h3 upgrade). QUIC
    /// multiplexes like h2 and coalesces by certificate/IP the same
    /// way, but carries no ORIGIN frame (RFC 8336 is h2-only), so
    /// `origin_set` is always `None` for it; always `false` outside
    /// an h3 universe, so the pure-h2 pool never consults it.
    pub quic: bool,
}

impl PooledConnection {
    /// Can this connection multiplex (HTTP/2)?
    pub fn multiplexes(&self) -> bool {
        self.protocol == Protocol::H2
    }
}

/// How a request got (or didn't get) a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseDecision {
    /// Reuse an existing same-host connection (ordinary keep-alive).
    SameHost(usize),
    /// Coalesce onto a connection opened for a different host.
    Coalesce(usize),
    /// Open a new connection.
    New,
}

/// The pool and its reuse logic.
///
/// Index invariants (maintained by [`ConnectionPool::insert`], relied
/// on by [`ConnectionPool::decide`]):
/// - every bucket holds connection indices in ascending insertion
///   order, so iterating a bucket (or an ordered merge of buckets)
///   visits candidates in exactly the order the linear scan would;
/// - `exact_san[h]` ∪ `wildcard_san[parent(h)]` is precisely the set
///   of connections whose certificate covers hostname `h` (RFC 6125
///   matching: an exact SAN equals the name, a wildcard SAN covers
///   exactly the names sharing its parent);
/// - `by_ip[a]` is the set of connections with `a` in their DNS
///   available set.
///
/// The identity fields consulted by the indexes (`host`, `cert`,
/// `available_set`) are never mutated after insert — the loader only
/// touches transfer bookkeeping (`bytes_transferred`, `in_flight`,
/// `busy_until`) through [`ConnectionPool::get_mut`].
#[derive(Debug, Default)]
pub struct ConnectionPool {
    conns: Vec<PooledConnection>,
    hosts: HostTable,
    by_host: FxHashMap<HostId, Vec<u32>>,
    exact_san: FxHashMap<HostId, Vec<u32>>,
    wildcard_san: FxHashMap<HostId, Vec<u32>>,
    by_ip: FxHashMap<IpAddr, Vec<u32>>,
    /// Coalesced (host → connection) mappings that drew a `421
    /// Misdirected Request`: the server behind the connection refused
    /// to serve that authority, so the pair is barred from coalescing
    /// for the rest of the page load (mirrors Firefox's 421 handling).
    /// Same-host reuse is unaffected — a 421 indicts the mapping, not
    /// the connection.
    evicted: FxHashMap<HostId, Vec<u32>>,
}

impl ConnectionPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// All connections.
    pub fn connections(&self) -> &[PooledConnection] {
        &self.conns
    }

    /// Mutable access to one connection.
    pub fn get_mut(&mut self, idx: usize) -> &mut PooledConnection {
        &mut self.conns[idx]
    }

    /// Empty the pool for the next page visit while keeping every
    /// allocation warm: the connection vector, the index maps *and*
    /// their per-key buckets retain capacity, and the host intern
    /// table is kept entirely — interning is append-only and ids
    /// never leak into output, so a table warmed by earlier visits is
    /// indistinguishable from a fresh one (a stale key over an empty
    /// bucket behaves exactly like an absent key).
    pub fn clear(&mut self) {
        self.conns.clear();
        for bucket in self.by_host.values_mut() {
            bucket.clear();
        }
        for bucket in self.exact_san.values_mut() {
            bucket.clear();
        }
        for bucket in self.wildcard_san.values_mut() {
            bucket.clear();
        }
        for bucket in self.by_ip.values_mut() {
            bucket.clear();
        }
        for bucket in self.evicted.values_mut() {
            bucket.clear();
        }
    }

    /// Insert a connection; returns its index. The certificate's SAN
    /// list is compiled into the coalescing indexes here, once, so no
    /// later decision ever walks it.
    pub fn insert(&mut self, conn: PooledConnection) -> usize {
        let idx = u32::try_from(self.conns.len()).expect("pool outgrew u32 indices");
        let host_id = self.hosts.intern(conn.host.as_str());
        self.by_host.entry(host_id).or_default().push(idx);
        for san in &conn.cert.sans {
            let (map, key) = if san.is_wildcard() {
                let Some(parent) = san.parent_str() else {
                    continue; // a bare "*" SAN can never match
                };
                (&mut self.wildcard_san, parent)
            } else {
                (&mut self.exact_san, san.as_str())
            };
            let bucket = map.entry(self.hosts.intern(key)).or_default();
            // Duplicate SAN entries on one cert must not duplicate
            // the index entry.
            if bucket.last() != Some(&idx) {
                bucket.push(idx);
            }
        }
        for ip in conn.available_set.iter() {
            let bucket = self.by_ip.entry(*ip).or_default();
            if bucket.last() != Some(&idx) {
                bucket.push(idx);
            }
        }
        self.conns.push(conn);
        idx as usize
    }

    /// Record a `421 Misdirected Request` for `host` on connection
    /// `idx`: that coalesced mapping is evicted and will never be
    /// offered again by [`ConnectionPool::decide`] (either path). The
    /// caller replays the request, normally on a dedicated connection.
    pub fn evict_coalesce(&mut self, host: &DnsName, idx: usize) {
        let host_id = self.hosts.intern(host.as_str());
        let idx = u32::try_from(idx).expect("pool outgrew u32 indices");
        let bucket = self.evicted.entry(host_id).or_default();
        if !bucket.contains(&idx) {
            bucket.push(idx);
        }
    }

    /// Number of evicted (host, connection) coalesce mappings.
    pub fn evicted_mappings(&self) -> usize {
        self.evicted.values().map(Vec::len).sum()
    }

    fn is_evicted(&self, host_id: Option<HostId>, idx: u32) -> bool {
        host_id
            .and_then(|id| self.evicted.get(&id))
            .is_some_and(|b| b.contains(&idx))
    }

    /// Decide how a request to `host` (with DNS answer `addrs`, in
    /// `partition`) gets a connection under `policy`.
    ///
    /// `colocated(conn_host)` must answer whether the server behind a
    /// pooled connection can serve `host` without a 421; it
    /// represents the server-side half of the decision that the
    /// client cannot see but experiences as an error + retry.
    #[allow(clippy::too_many_arguments)] // one decision, eight independent inputs
    pub fn decide(
        &self,
        policy: BrowserKind,
        host: &DnsName,
        addrs: &[IpAddr],
        partition: PoolPartition,
        max_h1_per_host: u32,
        start: f64,
        colocated: impl Fn(&DnsName) -> bool,
    ) -> ReuseDecision {
        let decision = self.decide_indexed(
            policy,
            host,
            addrs,
            partition,
            max_h1_per_host,
            start,
            &colocated,
        );
        #[cfg(debug_assertions)]
        {
            let reference = self.decide_linear(
                policy,
                host,
                addrs,
                partition,
                max_h1_per_host,
                start,
                &colocated,
            );
            assert_eq!(
                decision, reference,
                "indexed decision diverged from linear reference for {host} under {policy:?}"
            );
        }
        decision
    }

    #[allow(clippy::too_many_arguments)]
    fn decide_indexed(
        &self,
        policy: BrowserKind,
        host: &DnsName,
        addrs: &[IpAddr],
        partition: PoolPartition,
        max_h1_per_host: u32,
        start: f64,
        colocated: &impl Fn(&DnsName) -> bool,
    ) -> ReuseDecision {
        // The §4 ideal models are structural: they count connections
        // per service and are blind to pool partitions, HTTP/1.1
        // serialization, and timing — "the number of TLS handshakes
        // is equal to the number of separate services" (§4.2).
        let is_ideal = matches!(policy, BrowserKind::IdealIp | BrowserKind::IdealOrigin);
        fn bucket_of(map: &FxHashMap<HostId, Vec<u32>>, key: Option<HostId>) -> &[u32] {
            key.and_then(|id| map.get(&id))
                .map_or(&[], |b| b.as_slice())
        }

        // 1. Same-host reuse (keep-alive): H2 always multiplexes; an
        //    H1.1 connection is only reusable when idle. A hostname
        //    the interner has never seen has no connections at all.
        let host_id = self.hosts.get(host.as_str());
        let same_host = bucket_of(&self.by_host, host_id);
        let mut h1_same_host = 0u32;
        for &i in same_host {
            let c = &self.conns[i as usize];
            if c.closed || (!is_ideal && c.partition != partition) {
                continue;
            }
            if c.multiplexes() || is_ideal {
                return ReuseDecision::SameHost(i as usize);
            }
            h1_same_host += 1;
            if c.in_flight == 0 && c.busy_until <= start {
                return ReuseDecision::SameHost(i as usize);
            }
        }
        if h1_same_host >= max_h1_per_host {
            // All six H1.1 slots busy: queue behind the least loaded
            // (modelled as same-host reuse with blocking charged by
            // the loader).
            if let Some((i, _)) = same_host
                .iter()
                .map(|&i| (i as usize, &self.conns[i as usize]))
                .filter(|(_, c)| !c.closed && c.partition == partition)
                .min_by(|(_, a), (_, b)| {
                    a.busy_until
                        .partial_cmp(&b.busy_until)
                        .expect("finite times")
                })
            {
                return ReuseDecision::SameHost(i);
            }
        }

        // 2. Cross-host coalescing (HTTP/2 only, same partition, cert
        //    must cover the new name, server must actually serve it).
        //
        // Real browsers require the connection's certificate to cover
        // the new name, so the candidates are exactly the SAN-index
        // buckets for the hostname (exact entries) and its parent
        // (wildcard entries), merged in ascending insertion order to
        // reproduce the linear scan's first match.
        if !is_ideal {
            let exact = bucket_of(&self.exact_san, host_id);
            let wild = bucket_of(
                &self.wildcard_san,
                host.parent_str().and_then(|p| self.hosts.get(p)),
            );
            let (mut a, mut b) = (0usize, 0usize);
            loop {
                let i = match (exact.get(a), wild.get(b)) {
                    (Some(&x), Some(&y)) if x == y => {
                        a += 1;
                        b += 1;
                        x
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        a += 1;
                        x
                    }
                    (Some(_), Some(&y)) => {
                        b += 1;
                        y
                    }
                    (Some(&x), None) => {
                        a += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        b += 1;
                        y
                    }
                    (None, None) => break,
                };
                let c = &self.conns[i as usize];
                debug_assert!(c.cert.covers(host), "SAN index out of sync with cert");
                if c.partition != partition || !c.multiplexes() || self.is_evicted(host_id, i) {
                    continue;
                }
                if let Some(d) = Self::coalesce_check(policy, c, host, addrs, colocated, i as usize)
                {
                    return d;
                }
            }
            return ReuseDecision::New;
        }

        // The ideal models skip the certificate requirement (§4
        // assumes the least-effort SAN modifications are applied), so
        // the SAN index cannot narrow them. IdealIp still needs an
        // address overlap — the by-ip index names its candidates —
        // while IdealOrigin coalesces on colocation alone and must
        // consider every connection.
        match policy {
            BrowserKind::IdealIp => {
                let mut candidates: Vec<u32> = addrs
                    .iter()
                    .filter_map(|a| self.by_ip.get(a))
                    .flatten()
                    .copied()
                    .collect();
                candidates.sort_unstable();
                candidates.dedup();
                for i in candidates {
                    let c = &self.conns[i as usize];
                    if !c.closed && !self.is_evicted(host_id, i) && colocated(&c.host) {
                        return ReuseDecision::Coalesce(i as usize);
                    }
                }
            }
            _ => {
                for (i, c) in self.conns.iter().enumerate() {
                    if !c.closed && !self.is_evicted(host_id, i as u32) && colocated(&c.host) {
                        return ReuseDecision::Coalesce(i);
                    }
                }
            }
        }
        ReuseDecision::New
    }

    /// The step-2 per-candidate policy check shared by the indexed
    /// non-ideal path: IP evidence (exact or transitive) or an ORIGIN
    /// frame, after the server-side colocation gate.
    fn coalesce_check(
        policy: BrowserKind,
        c: &PooledConnection,
        host: &DnsName,
        addrs: &[IpAddr],
        colocated: &impl Fn(&DnsName) -> bool,
        idx: usize,
    ) -> Option<ReuseDecision> {
        if !colocated(&c.host) {
            return None;
        }
        let ip_match = if policy.ip_transitive() {
            c.available_set.iter().any(|a| addrs.contains(a))
        } else {
            addrs.contains(&c.ip)
        };
        let origin_match = policy.uses_origin_frame()
            && c.origin_set
                .as_ref()
                .map(|s| s.allows_https_host(host.as_str()))
                .unwrap_or(false);
        let allowed = match policy {
            BrowserKind::Chromium | BrowserKind::Firefox => ip_match,
            BrowserKind::FirefoxOrigin => origin_match || ip_match,
            BrowserKind::IdealIp | BrowserKind::IdealOrigin => {
                unreachable!("ideal policies take the dedicated paths")
            }
        };
        allowed.then_some(ReuseDecision::Coalesce(idx))
    }

    /// The original full-scan decision logic, kept as the reference
    /// implementation: the indexed [`ConnectionPool::decide`]
    /// must agree with it on every input (asserted in debug builds and
    /// by the randomized property test).
    #[allow(clippy::too_many_arguments)]
    pub fn decide_linear(
        &self,
        policy: BrowserKind,
        host: &DnsName,
        addrs: &[IpAddr],
        partition: PoolPartition,
        max_h1_per_host: u32,
        start: f64,
        colocated: impl Fn(&DnsName) -> bool,
    ) -> ReuseDecision {
        let is_ideal = matches!(policy, BrowserKind::IdealIp | BrowserKind::IdealOrigin);

        // 1. Same-host reuse (keep-alive): H2 always multiplexes; an
        //    H1.1 connection is only reusable when idle.
        let mut h1_same_host = 0u32;
        for (i, c) in self.conns.iter().enumerate() {
            if c.closed || (!is_ideal && c.partition != partition) || &c.host != host {
                continue;
            }
            if c.multiplexes() || is_ideal {
                return ReuseDecision::SameHost(i);
            }
            h1_same_host += 1;
            if c.in_flight == 0 && c.busy_until <= start {
                return ReuseDecision::SameHost(i);
            }
        }
        if h1_same_host >= max_h1_per_host {
            if let Some((i, _)) = self
                .conns
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.closed && c.partition == partition && &c.host == host)
                .min_by(|(_, a), (_, b)| {
                    a.busy_until
                        .partial_cmp(&b.busy_until)
                        .expect("finite times")
                })
            {
                return ReuseDecision::SameHost(i);
            }
        }

        // 2. Cross-host coalescing (HTTP/2 only, same partition, cert
        //    must cover the new name, server must actually serve it,
        //    and the mapping must not have been evicted by a 421).
        let host_id = self.hosts.get(host.as_str());
        for (i, c) in self.conns.iter().enumerate() {
            if c.closed || self.is_evicted(host_id, i as u32) {
                continue;
            }
            if !is_ideal && (c.partition != partition || !c.multiplexes()) {
                continue;
            }
            // Real browsers require the connection's certificate to
            // cover the new name; the §4 ideal models assume the
            // least-effort SAN modifications have been applied.
            if !is_ideal && !c.cert.covers(host) {
                continue;
            }
            if !colocated(&c.host) {
                continue;
            }
            let ip_match = if policy.ip_transitive() {
                c.available_set.iter().any(|a| addrs.contains(a))
            } else {
                addrs.contains(&c.ip)
            };
            let origin_match = policy.uses_origin_frame()
                && c.origin_set
                    .as_ref()
                    .map(|s| s.allows_https_host(host.as_str()))
                    .unwrap_or(false);
            let allowed = match policy {
                BrowserKind::Chromium | BrowserKind::Firefox | BrowserKind::IdealIp => ip_match,
                BrowserKind::FirefoxOrigin => origin_match || ip_match,
                BrowserKind::IdealOrigin => {
                    // The model assumes perfect ORIGIN deployment:
                    // colocation itself implies an advertised origin.
                    true
                }
            };
            if allowed {
                return ReuseDecision::Coalesce(i);
            }
        }
        ReuseDecision::New
    }

    /// Name the policy rule that let `host` (DNS answer `addrs`)
    /// coalesce onto connection `idx` — for trace annotations, so a
    /// waterfall can say *why* a request rode a foreign connection.
    /// The checks mirror [`ConnectionPool::decide`]'s step 2, most
    /// specific first.
    pub fn explain_coalesce(
        &self,
        policy: BrowserKind,
        host: &DnsName,
        addrs: &[IpAddr],
        idx: usize,
    ) -> &'static str {
        let c = &self.conns[idx];
        if policy.uses_origin_frame()
            && c.origin_set
                .as_ref()
                .map(|s| s.allows_https_host(host.as_str()))
                .unwrap_or(false)
        {
            return "origin-frame";
        }
        if addrs.contains(&c.ip) {
            return "ip-exact";
        }
        if policy.ip_transitive() && c.available_set.iter().any(|a| addrs.contains(a)) {
            return "ip-transitive";
        }
        // Only IdealOrigin coalesces with no IP or ORIGIN evidence:
        // the §4 model assumes colocation itself implies reusability.
        "model-colocation"
    }

    /// Would `policy`'s **h2** rules have merged a request to `host`
    /// onto an existing connection, had every pooled connection
    /// multiplexed? Called just before a legacy HTTP/1.1 connection
    /// opens, this counts the *redundant connections* of Sander
    /// et al.: setups an all-h2 deployment would have avoided.
    ///
    /// Mirrors [`ConnectionPool::decide_linear`] with the protocol
    /// gates removed — no `multiplexes()` requirement, no HTTP/1.1
    /// idleness check, no per-host cap (h2 multiplexes same-host
    /// unconditionally). Partition, certificate-coverage,
    /// 421-eviction, and colocation gates keep their real-browser
    /// semantics. Connections the HTTP/1.1 peer already closed still
    /// count as merge targets: in the hypothetical h2 world the same
    /// setup would have stayed open.
    pub fn redundant_if_h2(
        &self,
        policy: BrowserKind,
        host: &DnsName,
        addrs: &[IpAddr],
        partition: PoolPartition,
        colocated: impl Fn(&DnsName) -> bool,
    ) -> bool {
        let is_ideal = matches!(policy, BrowserKind::IdealIp | BrowserKind::IdealOrigin);
        let host_id = self.hosts.get(host.as_str());
        for (i, c) in self.conns.iter().enumerate() {
            // Same-host: an h2 connection would simply multiplex.
            if &c.host == host && (is_ideal || c.partition == partition) {
                return true;
            }
            if self.is_evicted(host_id, i as u32) {
                continue;
            }
            if !is_ideal && (c.partition != partition || !c.cert.covers(host)) {
                continue;
            }
            if !colocated(&c.host) {
                continue;
            }
            let ip_match = if policy.ip_transitive() {
                c.available_set.iter().any(|a| addrs.contains(a))
            } else {
                addrs.contains(&c.ip)
            };
            let origin_match = policy.uses_origin_frame()
                && c.origin_set
                    .as_ref()
                    .map(|s| s.allows_https_host(host.as_str()))
                    .unwrap_or(false);
            let merged = match policy {
                BrowserKind::Chromium | BrowserKind::Firefox | BrowserKind::IdealIp => ip_match,
                BrowserKind::FirefoxOrigin => origin_match || ip_match,
                BrowserKind::IdealOrigin => true,
            };
            if merged {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use origin_dns::record::v4;
    use origin_tls::CertificateBuilder;

    fn conn(host: &str, ip: IpAddr, set: Vec<IpAddr>, sans: &[&str]) -> PooledConnection {
        let mut b = CertificateBuilder::new(name(host));
        for s in sans {
            b = b.san(name(s));
        }
        PooledConnection {
            host: name(host),
            ip,
            available_set: set.into(),
            cert: std::sync::Arc::new(b.build()),
            origin_set: None,
            protocol: Protocol::H2,
            partition: PoolPartition::Default,
            bytes_transferred: 0,
            in_flight: 0,
            busy_until: 0.0,
            closed: false,
            quic: false,
        }
    }

    fn always(_: &DnsName) -> bool {
        true
    }

    #[test]
    fn same_host_h2_always_reuses() {
        let mut pool = ConnectionPool::new();
        pool.insert(conn("a.com", v4(1, 1, 1, 1), vec![v4(1, 1, 1, 1)], &[]));
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("a.com"),
            &[v4(9, 9, 9, 9)], // even with different DNS answer
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::SameHost(0));
    }

    #[test]
    fn chromium_requires_connected_ip() {
        let mut pool = ConnectionPool::new();
        // Connected to IPA; available set {IPA, IPB} (the §2.3 example).
        let ipa = v4(1, 1, 1, 1);
        let ipb = v4(2, 2, 2, 2);
        let ipc = v4(3, 3, 3, 3);
        pool.insert(conn(
            "www.a.com",
            ipa,
            vec![ipa, ipb],
            &["*.a.com", "cdn.a.com"],
        ));
        // Subresource's DNS answer {IPB, IPC}: Chromium misses…
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("cdn.a.com"),
            &[ipb, ipc],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New);
        // …Firefox's transitivity finds IPB in the available set.
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("cdn.a.com"),
            &[ipb, ipc],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
    }

    #[test]
    fn chromium_coalesces_on_exact_ip() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["*.a.com"]));
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("img.a.com"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
    }

    #[test]
    fn cert_coverage_is_mandatory() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &[])); // no SANs beyond subject
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("cdn.a.com"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New);
    }

    #[test]
    fn colocation_check_prevents_421_path() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["other.example"]));
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("other.example"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            |_| false, // server would 421
        );
        assert_eq!(d, ReuseDecision::New);
    }

    #[test]
    fn origin_frame_coalesces_without_ip_match() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        let mut c = conn("www.a.com", ip, vec![ip], &["third.party.com"]);
        c.origin_set = Some(OriginSet::from_hosts(["www.a.com", "third.party.com"]));
        pool.insert(c);
        // DNS answer for the third party has no overlap at all.
        let answer = [v4(7, 7, 7, 7)];
        let d = pool.decide(
            BrowserKind::FirefoxOrigin,
            &name("third.party.com"),
            &answer,
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
        // Plain Firefox (no ORIGIN support) opens a new connection.
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("third.party.com"),
            &answer,
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New);
    }

    #[test]
    fn partitions_do_not_mix() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("fonts.x.com", ip, vec![ip], &[]));
        let d = pool.decide(
            BrowserKind::Firefox,
            &name("fonts.x.com"),
            &[ip],
            PoolPartition::Anonymous,
            6,
            0.0,
            always,
        );
        assert_eq!(
            d,
            ReuseDecision::New,
            "anonymous must not reuse default-pool conn"
        );
    }

    #[test]
    fn h1_busy_connection_not_reused_until_limit() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        let mut c = conn("old.x.com", ip, vec![ip], &[]);
        c.protocol = Protocol::H11;
        c.in_flight = 1;
        pool.insert(c);
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("old.x.com"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New, "busy H1.1 conn → open another");
        // At the limit, queue on the least-loaded.
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("old.x.com"),
            &[ip],
            PoolPartition::Default,
            1,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::SameHost(0));
    }

    #[test]
    fn ideal_origin_coalesces_on_colocation_alone() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["svc.example"]));
        let d = pool.decide(
            BrowserKind::IdealOrigin,
            &name("svc.example"),
            &[], // no DNS performed at all
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
    }

    #[test]
    fn wildcard_san_scopes_to_one_level() {
        // RFC 6125: "*.cdn.com" matches exactly one label — a
        // sibling subdomain coalesces, the bare parent and a deeper
        // name do not (both the wildcard index bucket and the cert
        // check must agree on this).
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("edge.cdn.com", ip, vec![ip], &["*.cdn.com"]));
        for (host, want) in [
            ("a.cdn.com", ReuseDecision::Coalesce(0)),
            ("cdn.com", ReuseDecision::New),
            ("x.y.cdn.com", ReuseDecision::New),
        ] {
            let d = pool.decide(
                BrowserKind::Chromium,
                &name(host),
                &[ip],
                PoolPartition::Default,
                6,
                0.0,
                always,
            );
            assert_eq!(d, want, "{host}");
        }
    }

    #[test]
    fn exact_and_wildcard_buckets_agree_on_first_match_order() {
        // A host covered by one connection's exact SAN and another's
        // wildcard SAN must coalesce onto the *earliest-inserted*
        // candidate, exactly as the linear scan would — the indexed
        // path merges the exact and wildcard buckets by index, and
        // this pins that ordering in both insertion orders.
        let ip = v4(1, 1, 1, 1);
        for exact_first in [true, false] {
            let mut pool = ConnectionPool::new();
            if exact_first {
                pool.insert(conn("e.cdn.com", ip, vec![ip], &["static.cdn.com"]));
                pool.insert(conn("w.cdn.com", ip, vec![ip], &["*.cdn.com"]));
            } else {
                pool.insert(conn("w.cdn.com", ip, vec![ip], &["*.cdn.com"]));
                pool.insert(conn("e.cdn.com", ip, vec![ip], &["static.cdn.com"]));
            }
            let d = pool.decide(
                BrowserKind::Chromium,
                &name("static.cdn.com"),
                &[ip],
                PoolPartition::Default,
                6,
                0.0,
                always,
            );
            assert_eq!(d, ReuseDecision::Coalesce(0), "exact_first={exact_first}");
        }
    }

    #[test]
    fn firefox_coalesces_via_available_set_overlap() {
        // §2.3's {IPA, IPB} example: the pooled connection connected
        // to A but its DNS answer also listed B. A new host resolving
        // to {B} alone overlaps the *available* set, which Firefox
        // honours (transitive matching) and Chromium — which keeps
        // only the connected IP — does not.
        let mut pool = ConnectionPool::new();
        let a = v4(1, 1, 1, 1);
        let b = v4(2, 2, 2, 2);
        pool.insert(conn("a.com", a, vec![a, b], &["b.com"]));
        let answer = [b];
        let ff = pool.decide(
            BrowserKind::Firefox,
            &name("b.com"),
            &answer,
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(ff, ReuseDecision::Coalesce(0));
        let cr = pool.decide(
            BrowserKind::Chromium,
            &name("b.com"),
            &answer,
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(cr, ReuseDecision::New);
    }

    #[test]
    fn evicted_mapping_never_coalesces_again() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["*.a.com"]));
        let host = name("img.a.com");
        let d = pool.decide(
            BrowserKind::Chromium,
            &host,
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
        // The coalesced request drew a 421: evict the mapping.
        pool.evict_coalesce(&host, 0);
        assert_eq!(pool.evicted_mappings(), 1);
        let d = pool.decide(
            BrowserKind::Chromium,
            &host,
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New, "evicted mapping must not be reused");
        // Eviction is idempotent.
        pool.evict_coalesce(&host, 0);
        assert_eq!(pool.evicted_mappings(), 1);
    }

    #[test]
    fn eviction_scopes_to_the_one_host() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["*.a.com"]));
        pool.evict_coalesce(&name("img.a.com"), 0);
        // A sibling host still coalesces onto the same connection…
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("static.a.com"),
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(0));
        // …and same-host keep-alive on the connection is unaffected.
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("www.a.com"),
            &[v4(9, 9, 9, 9)],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::SameHost(0));
    }

    #[test]
    fn eviction_applies_to_ideal_policies_too() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["svc.example"]));
        pool.evict_coalesce(&name("svc.example"), 0);
        for policy in [BrowserKind::IdealIp, BrowserKind::IdealOrigin] {
            let d = pool.decide(
                policy,
                &name("svc.example"),
                &[ip],
                PoolPartition::Default,
                6,
                0.0,
                always,
            );
            assert_eq!(d, ReuseDecision::New, "{policy:?}");
        }
    }

    #[test]
    fn eviction_falls_through_to_next_candidate() {
        // Two connections could serve the host; evicting the first
        // mapping makes both decide paths pick the second.
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        pool.insert(conn("www.a.com", ip, vec![ip], &["*.a.com"]));
        pool.insert(conn("alt.a.com", ip, vec![ip], &["*.a.com"]));
        let host = name("img.a.com");
        pool.evict_coalesce(&host, 0);
        let d = pool.decide(
            BrowserKind::Chromium,
            &host,
            &[ip],
            PoolPartition::Default,
            6,
            0.0,
            always,
        );
        assert_eq!(d, ReuseDecision::Coalesce(1));
    }

    #[test]
    fn closed_connection_is_never_reused_and_frees_its_slot() {
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        let mut c = conn("old.x.com", ip, vec![ip], &[]);
        c.protocol = Protocol::H11;
        c.closed = true;
        pool.insert(c);
        // Even with max_h1_per_host = 1 the closed connection neither
        // serves the request nor counts toward the cap: open fresh.
        let d = pool.decide(
            BrowserKind::Chromium,
            &name("old.x.com"),
            &[ip],
            PoolPartition::Default,
            1,
            100.0,
            always,
        );
        assert_eq!(d, ReuseDecision::New);
        // The ideal models skip it too.
        for policy in [BrowserKind::IdealIp, BrowserKind::IdealOrigin] {
            let d = pool.decide(
                policy,
                &name("old.x.com"),
                &[ip],
                PoolPartition::Default,
                6,
                100.0,
                always,
            );
            assert_eq!(d, ReuseDecision::New, "{policy:?}");
        }
    }

    #[test]
    fn redundancy_probe_ignores_protocol_gates() {
        // A busy HTTP/1.1 connection to the same host: the real
        // decision opens a new connection, but had the pool been h2
        // the request would have multiplexed — redundant under every
        // policy.
        let mut pool = ConnectionPool::new();
        let ip = v4(1, 1, 1, 1);
        let mut c = conn("shard1.a.com", ip, vec![ip], &["*.a.com"]);
        c.protocol = Protocol::H11;
        c.in_flight = 1;
        pool.insert(c);
        let host = name("shard1.a.com");
        assert_eq!(
            pool.decide(
                BrowserKind::Firefox,
                &host,
                &[ip],
                PoolPartition::Default,
                6,
                0.0,
                always
            ),
            ReuseDecision::New
        );
        for policy in [
            BrowserKind::Chromium,
            BrowserKind::Firefox,
            BrowserKind::FirefoxOrigin,
            BrowserKind::IdealIp,
            BrowserKind::IdealOrigin,
        ] {
            assert!(
                pool.redundant_if_h2(policy, &host, &[ip], PoolPartition::Default, always),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn redundancy_probe_keeps_policy_evidence_rules() {
        // Cross-host shard with cert coverage: IP-based policies need
        // address evidence, IdealOrigin merges on colocation alone.
        let mut pool = ConnectionPool::new();
        let ipa = v4(1, 1, 1, 1);
        let ipb = v4(2, 2, 2, 2);
        let mut c = conn("shard1.a.com", ipa, vec![ipa], &["*.a.com"]);
        c.protocol = Protocol::H11;
        pool.insert(c);
        let host = name("shard2.a.com");
        // Disjoint DNS answer: no IP evidence.
        assert!(!pool.redundant_if_h2(
            BrowserKind::Firefox,
            &host,
            &[ipb],
            PoolPartition::Default,
            always
        ));
        assert!(pool.redundant_if_h2(
            BrowserKind::IdealOrigin,
            &host,
            &[ipb],
            PoolPartition::Default,
            always
        ));
        // Shared address: the IP policies would have merged.
        assert!(pool.redundant_if_h2(
            BrowserKind::Firefox,
            &host,
            &[ipa],
            PoolPartition::Default,
            always
        ));
        // Partition mismatch blocks real policies even with evidence.
        assert!(!pool.redundant_if_h2(
            BrowserKind::Firefox,
            &host,
            &[ipa],
            PoolPartition::Anonymous,
            always
        ));
        // No colocation → a coalesce attempt would 421: not redundant.
        assert!(!pool.redundant_if_h2(
            BrowserKind::Firefox,
            &host,
            &[ipa],
            PoolPartition::Default,
            |_| false
        ));
    }

    #[test]
    fn randomized_pools_indexed_matches_linear() {
        // Property test: on randomized pools (hosts, SANs incl.
        // wildcards, overlapping address sets, mixed protocols and
        // partitions, busy H1.1 connections) the indexed decision
        // equals the linear reference for every policy, host and
        // answer. Seeded SimRng, so failures replay exactly.
        use origin_netsim::SimRng;
        let hosts = [
            "a.com",
            "www.a.com",
            "b.net",
            "api.b.net",
            "c.org",
            "cdn.c.org",
            "static.cdn.com",
            "edge.cdn.com",
        ];
        let sans = [
            "a.com",
            "*.a.com",
            "b.net",
            "*.b.net",
            "*.c.org",
            "static.cdn.com",
            "*.cdn.com",
            "edge.cdn.com",
        ];
        let policies = [
            BrowserKind::Chromium,
            BrowserKind::Firefox,
            BrowserKind::FirefoxOrigin,
            BrowserKind::IdealIp,
            BrowserKind::IdealOrigin,
        ];
        let partitions = [
            PoolPartition::Default,
            PoolPartition::Anonymous,
            PoolPartition::Programmatic,
        ];
        let ips: Vec<IpAddr> = (1..=6).map(|d| v4(10, 0, 0, d)).collect();
        let mut rng = SimRng::seed_from_u64(0x5EED_C0DE);
        for trial in 0..150u32 {
            let mut pool = ConnectionPool::new();
            let n = 1 + rng.index(7);
            for _ in 0..n {
                let host = *rng.choose(&hosts);
                let ip = *rng.choose(&ips);
                let mut set = vec![ip];
                while rng.chance(0.4) {
                    set.push(*rng.choose(&ips));
                }
                let mut cert_sans: Vec<&str> = Vec::new();
                while rng.chance(0.6) && cert_sans.len() < 3 {
                    cert_sans.push(*rng.choose(&sans));
                }
                let mut c = conn(host, ip, set, &cert_sans);
                if rng.chance(0.3) {
                    c.protocol = Protocol::H11;
                    c.in_flight = rng.index(3) as u32;
                    c.busy_until = rng.range_f64(0.0, 40.0);
                    c.closed = rng.chance(0.25);
                }
                if rng.chance(0.2) {
                    c.partition = *rng.choose(&partitions);
                }
                if rng.chance(0.2) {
                    c.origin_set = Some(OriginSet::from_hosts([host, *rng.choose(&hosts)]));
                }
                pool.insert(c);
            }
            // Random 421 evictions must be honored identically by
            // both decide paths.
            while rng.chance(0.3) {
                // The deref steers inference to `T = &str` (clippy's
                // auto-deref suggestion makes `choose` infer `T = str`).
                #[allow(clippy::explicit_auto_deref)]
                let host = name(*rng.choose(&hosts));
                let idx = rng.index(pool.len());
                pool.evict_coalesce(&host, idx);
            }
            for _ in 0..12 {
                let policy = *rng.choose(&policies);
                let host = name(hosts[rng.index(hosts.len())]);
                let mut answer: Vec<IpAddr> = Vec::new();
                while answer.len() < 3 && rng.chance(0.7) {
                    answer.push(*rng.choose(&ips));
                }
                let partition = *rng.choose(&partitions);
                let start = rng.range_f64(0.0, 50.0);
                // Randomized but deterministic colocation relation.
                let colo_salt = rng.next_u64();
                let colocated =
                    |h: &DnsName| !(h.as_str().len() as u64 ^ colo_salt).is_multiple_of(3);
                let indexed = pool.decide(policy, &host, &answer, partition, 2, start, colocated);
                let linear =
                    pool.decide_linear(policy, &host, &answer, partition, 2, start, colocated);
                assert_eq!(
                    indexed, linear,
                    "trial {trial}: {policy:?} {host} answer {answer:?} partition {partition:?}"
                );
            }
        }
    }
}
