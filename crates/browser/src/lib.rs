//! Browser network-stack models.
//!
//! The paper's §2.3 documents — via source inspection of
//! `net/http/http_stream_factory.cc` (Chromium) and
//! `netwerk/protocol/http/Http2Session.cpp` (Firefox) — exactly how
//! each browser decides whether a subresource request can reuse an
//! existing connection. This crate implements those decision
//! procedures over a pooled-connection model and drives whole page
//! loads against any [`env::WebEnv`] (the synthetic universe, or the
//! CDN deployment simulator):
//!
//! - [`policy`] — the coalescing policies: Chromium strict-IP,
//!   Firefox transitive-IP, Firefox+ORIGIN, and the §4 *ideal* model
//!   variants (perfect IP / perfect ORIGIN coalescing).
//! - [`pool`] — the connection pool, partitioned by credentials mode
//!   (CORS-anonymous and XHR traffic pools separately, the §5.3
//!   obstruction).
//! - [`loader`] — the page loader: walks the resource tree, charges
//!   DNS / connect / TLS phases per the pool's decisions, models
//!   happy-eyeballs and speculative races, and emits a
//!   [`origin_web::PageLoad`].
//! - [`mod@env`] — the environment abstraction plus the webgen-backed
//!   implementation.
//! - [`session`] — the cross-visit session pool (idle timeouts,
//!   per-edge caps, budgeted LRU eviction) for the serving engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod loader;
pub mod policy;
pub mod pool;
pub mod session;

pub use env::{UniverseEnv, WebEnv};
pub use loader::{
    BrowserConfig, FaultCounts, FaultSession, PageLoader, VisitArena, REDUNDANCY_KINDS,
};
pub use policy::BrowserKind;
pub use pool::{ConnectionPool, PoolPartition, PooledConnection};
pub use session::{PoolChurn, SessionPool};
