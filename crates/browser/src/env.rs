//! The environment a browser loads pages against.

use origin_dns::{DnsName, QueryAnswer, ResolverState};
use origin_h2::OriginSet;
use origin_intern::HostTable;
use origin_netsim::{LinkProfile, SimRng, SimTime};
use origin_tls::Certificate;
use origin_webgen::{Dataset, PROVIDERS};
use std::cell::RefCell;
use std::net::IpAddr;

/// What the loader needs from "the rest of the Internet". The
/// synthetic universe implements it for the §3/§4 crawl; the CDN
/// simulator implements it for the §5 deployment (with its own
/// certificates, origin sets and anycast addressing).
pub trait WebEnv {
    /// Resolve a hostname at simulated time `now`.
    fn resolve(&mut self, host: &DnsName, now: SimTime, rng: &mut SimRng) -> Option<QueryAnswer>;

    /// [`WebEnv::resolve`] plus trace events (query spans, cache-hit
    /// and NXDOMAIN instants). The default ignores the tracer so
    /// existing environments stay correct; environments owning a real
    /// resolver should forward to
    /// [`origin_dns::ResolverState::resolve_traced`].
    fn resolve_traced(
        &mut self,
        host: &DnsName,
        now: SimTime,
        rng: &mut SimRng,
        _tracer: &mut origin_trace::Tracer,
    ) -> Option<QueryAnswer> {
        self.resolve(host, now, rng)
    }

    /// The certificate the server presents for connections to `host`.
    fn cert_for(&self, host: &DnsName) -> Option<&Certificate>;

    /// [`WebEnv::cert_for`] as a shared handle the loader can park on
    /// a pooled connection. The default clones the certificate once;
    /// environments that store certificates Arc-shared (the crawl
    /// universe) override it with a refcount bump.
    fn cert_shared(&self, host: &DnsName) -> Option<std::sync::Arc<Certificate>> {
        self.cert_for(host).map(|c| std::sync::Arc::new(c.clone()))
    }

    /// Origin AS of an address.
    fn asn_of_ip(&self, ip: &IpAddr) -> u32;

    /// Origin AS serving a hostname.
    fn asn_of_host(&self, host: &DnsName) -> u32;

    /// Can the server terminating connections for `conn_host` also
    /// authoritatively serve `new_host` on the same socket? When
    /// false, a coalescing attempt would draw `421 Misdirected
    /// Request` (§2.2).
    fn colocated(&self, conn_host: &DnsName, new_host: &DnsName) -> bool;

    /// The ORIGIN frame origin set the server for `host` advertises
    /// (None = server has no ORIGIN support — the pre-deployment
    /// world).
    fn origin_set_for(&self, host: &DnsName) -> Option<OriginSet>;

    /// Network path profile toward `host`.
    fn link_for(&self, host: &DnsName) -> LinkProfile;

    /// The two per-request host facts — origin AS and link profile —
    /// fetched together. The loader needs both at the top of every
    /// request; environments with a memoized fact cache override this
    /// to answer from a single lookup instead of two.
    fn request_facts(&self, host: &DnsName) -> (u32, LinkProfile) {
        (self.asn_of_host(host), self.link_for(host))
    }
}

/// The webgen-backed environment for the §3 crawl: resolves against
/// the universe's zones, serves the universe's certificates, treats
/// servers in the same provider AS as colocated, and (by default)
/// advertises no ORIGIN frames — exactly the 2021 Internet the paper
/// measured.
pub struct UniverseEnv<'a> {
    dataset: &'a Dataset,
    resolver_cache_flushed: bool,
    resolver: ResolverState,
    /// When set, servers hosted by these provider ASes advertise an
    /// origin set covering all page hosts they serve (used by the §4
    /// what-if runs and §5-style deployments on the crawl universe).
    pub origin_enabled_asns: Vec<u32>,
    /// Per-host derived facts (AS, registrable-domain id, link
    /// class), computed once per distinct hostname. `colocated` and
    /// `link_for` run for every candidate connection of every request;
    /// without the cache each call re-derives the registrable domain
    /// (allocating) and re-hashes the hostname into the universe maps.
    /// Everything cached is a pure function of the immutable dataset,
    /// so memoization cannot change any output.
    cache: RefCell<HostFactCache>,
}

/// See [`UniverseEnv::cache`]. The registrable domain is stored as an
/// interned id in the same table, making the `colocated` same-site
/// check a `u32` compare.
#[derive(Default)]
struct HostFactCache {
    hosts: HostTable,
    facts: Vec<HostFacts>,
}

#[derive(Clone, Copy)]
struct HostFacts {
    asn: u32,
    /// Interned id of the registrable domain.
    registrable: u32,
    /// 0 = CDN edge, 1 = same-continent tail, 2 = intercontinental
    /// tail (see [`WebEnv::link_for`]).
    link_class: u8,
}

/// Sentinel for table slots interned (e.g. as someone's registrable
/// domain) but not yet computed: `u32::MAX` is never a real AS.
const UNFILLED: HostFacts = HostFacts {
    asn: u32::MAX,
    registrable: u32::MAX,
    link_class: 0,
};

impl HostFactCache {
    fn lookup(&mut self, host: &DnsName, universe: &origin_webgen::Universe) -> HostFacts {
        if let Some(id) = self.hosts.get(host.as_str()) {
            if let Some(&f) = self.facts.get(id.index()) {
                if f.asn != u32::MAX {
                    return f;
                }
            }
        }
        let id = self.hosts.intern(host.as_str());
        let registrable = self.hosts.intern(host.registrable_str()).0;
        if self.facts.len() < self.hosts.len() {
            self.facts.resize(self.hosts.len(), UNFILLED);
        }
        let asn = universe.asn_of_host(host);
        let link_class = if PROVIDERS.iter().any(|p| p.asn == asn) {
            0
        } else {
            // Stable per-host class (FNV over the name), as before.
            let h = host.as_str().bytes().fold(0xcbf29ce484222325u64, |acc, b| {
                (acc ^ b as u64).wrapping_mul(0x100000001b3)
            });
            if h % 2 == 0 {
                1
            } else {
                2
            }
        };
        let f = HostFacts {
            asn,
            registrable,
            link_class,
        };
        self.facts[id.index()] = f;
        f
    }
}

impl<'a> UniverseEnv<'a> {
    /// Wrap a dataset. The resolver starts cold (the paper's crawler
    /// cleared caches between page loads).
    ///
    /// The dataset is borrowed read-only: all mutable resolver state
    /// (cache, round-robin rotation serials) lives in this env, so any
    /// number of envs — one per crawl worker — can share one dataset.
    /// Rotation still advances per query like a real authoritative
    /// farm, via the session's serial overlay.
    pub fn new(dataset: &'a Dataset) -> Self {
        UniverseEnv {
            dataset,
            resolver_cache_flushed: false,
            resolver: ResolverState::new(origin_dns::Transport::Udp53),
            origin_enabled_asns: Vec::new(),
            cache: RefCell::new(HostFactCache::default()),
        }
    }

    fn host_facts(&self, host: &DnsName) -> HostFacts {
        self.cache.borrow_mut().lookup(host, &self.dataset.universe)
    }

    /// Clear the DNS cache (fresh browser session per page, §3.1).
    pub fn flush_dns(&mut self) {
        self.resolver.flush_cache();
        self.resolver_cache_flushed = true;
    }

    /// The resolver's counters (plaintext exposure etc.).
    pub fn resolver_stats(&self) -> origin_dns::resolver::ResolverStats {
        self.resolver.stats()
    }

    /// The resolver's counters since the last take, resetting them to
    /// zero. Lets one env be reused across many page visits (keeping
    /// its host-fact cache warm) while each visit still records
    /// exactly the per-visit deltas a fresh env would have reported.
    pub fn take_resolver_stats(&mut self) -> origin_dns::resolver::ResolverStats {
        let stats = self.resolver.stats();
        self.resolver.reset_stats();
        stats
    }
}

impl WebEnv for UniverseEnv<'_> {
    fn resolve(&mut self, host: &DnsName, now: SimTime, rng: &mut SimRng) -> Option<QueryAnswer> {
        self.resolver
            .resolve(&self.dataset.universe.zones, host, now, rng)
    }

    fn resolve_traced(
        &mut self,
        host: &DnsName,
        now: SimTime,
        rng: &mut SimRng,
        tracer: &mut origin_trace::Tracer,
    ) -> Option<QueryAnswer> {
        self.resolver
            .resolve_traced(&self.dataset.universe.zones, host, now, rng, Some(tracer))
    }

    fn cert_for(&self, host: &DnsName) -> Option<&Certificate> {
        self.dataset.universe.cert_for(host)
    }

    fn cert_shared(&self, host: &DnsName) -> Option<std::sync::Arc<Certificate>> {
        self.dataset.universe.cert_shared(host)
    }

    fn asn_of_ip(&self, ip: &IpAddr) -> u32 {
        self.dataset.universe.asn_of_ip(ip)
    }

    fn asn_of_host(&self, host: &DnsName) -> u32 {
        self.host_facts(host).asn
    }

    fn colocated(&self, conn_host: &DnsName, new_host: &DnsName) -> bool {
        // Same registrable domain → same origin server farm. Same
        // provider AS → shared CDN edge able to serve both (the §4
        // model's core assumption, stated in §4.1). Both facts come
        // memoized: registrable domains compare as interned ids.
        let a = self.host_facts(conn_host);
        let b = self.host_facts(new_host);
        a.registrable == b.registrable || (a.asn != 0 && a.asn == b.asn)
    }

    fn origin_set_for(&self, host: &DnsName) -> Option<OriginSet> {
        let asn = self.asn_of_host(host);
        if !self.origin_enabled_asns.contains(&asn) {
            return None;
        }
        // An ORIGIN-enabled provider advertises the connected host
        // plus its sibling names on this certificate — the least-
        // effort configuration §4.3 ends at.
        let cert = self.cert_for(host)?;
        let mut set = OriginSet::from_hosts([host.as_str()]);
        for san in &cert.sans {
            if !san.is_wildcard() {
                set.add(origin_h2::OriginEntry::https(san.as_str()));
            }
        }
        Some(set)
    }

    fn link_for(&self, host: &DnsName) -> LinkProfile {
        link_profile(self.host_facts(host).link_class)
    }

    fn request_facts(&self, host: &DnsName) -> (u32, LinkProfile) {
        let f = self.host_facts(host);
        (f.asn, link_profile(f.link_class))
    }
}

/// Link profile for a memoized link class. Tail origins from a single
/// US-East vantage (§3.1): about half are same-continent, half
/// intercontinental; providers get a nearby CDN edge.
fn link_profile(class: u8) -> LinkProfile {
    match class {
        0 => LinkProfile::new(32.0, 60.0).with_jitter(0.25),
        1 => LinkProfile::new(95.0, 25.0).with_jitter(0.30),
        _ => LinkProfile::new(210.0, 18.0).with_jitter(0.25),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use origin_webgen::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(DatasetConfig {
            sites: 50,
            tranco_total: 500_000,
            seed: 3,
            ..Default::default()
        })
    }

    #[test]
    fn resolves_and_attributes() {
        let d = dataset();
        let mut env = UniverseEnv::new(&d);
        let mut rng = SimRng::seed_from_u64(1);
        let ans = env
            .resolve(&name("cdnjs.cloudflare.com"), SimTime::ZERO, &mut rng)
            .expect("service resolves");
        assert!(!ans.addresses.is_empty());
        assert_eq!(env.asn_of_ip(&ans.addresses[0]), 13335);
    }

    #[test]
    fn colocation_same_provider() {
        let d = dataset();
        let env = UniverseEnv::new(&d);
        // Two Cloudflare-hosted services are colocated.
        assert!(env.colocated(&name("cdnjs.cloudflare.com"), &name("ajax.cloudflare.com")));
        // Cloudflare and Google are not.
        assert!(!env.colocated(&name("cdnjs.cloudflare.com"), &name("fonts.gstatic.com")));
        // Same registrable domain always is.
        assert!(env.colocated(&name("site-000001.com"), &name("www.site-000001.com")));
    }

    #[test]
    fn origin_sets_only_for_enabled_asns() {
        let d = dataset();
        let mut env = UniverseEnv::new(&d);
        assert!(env.origin_set_for(&name("cdnjs.cloudflare.com")).is_none());
        env.origin_enabled_asns.push(13335);
        let set = env
            .origin_set_for(&name("cdnjs.cloudflare.com"))
            .expect("origin set");
        assert!(set.allows_https_host("cdnjs.cloudflare.com"));
    }

    #[test]
    fn links_differ_by_provider_size() {
        let d = dataset();
        let env = UniverseEnv::new(&d);
        let cdn = env.link_for(&name("cdnjs.cloudflare.com"));
        let tail = env.link_for(&name("tag0.widget-net-0.net"));
        assert!(cdn.rtt < tail.rtt);
    }
}
