//! Coalescing policies (§2.3 of the paper).

/// Which browser's connection-reuse algorithm to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrowserKind {
    /// Chromium ≈v88: IP-based coalescing with a *connected-set only*
    /// match — the subresource's DNS answer must contain the exact IP
    /// of an established connection, and the connection's certificate
    /// must cover the new name. Address-set transitivity is lost
    /// (§2.3's `{IPA,IPB}` example).
    Chromium,
    /// Firefox ≈v91: IP-based coalescing with transitivity — Firefox
    /// caches the full address set from each DNS answer, so any
    /// overlap between the new answer and a pooled connection's
    /// *available* set permits reuse (given certificate coverage).
    Firefox,
    /// Firefox ≈v96 with ORIGIN frame support: in addition to
    /// transitive IP matching, a connection whose advertised origin
    /// set contains the new name may be reused — though Firefox still
    /// performs the (render-blocking) DNS query first, the
    /// conservative behaviour §6.8 calls out.
    FirefoxOrigin,
    /// The §4 model's ideal IP coalescing: perfect knowledge of
    /// name→IP colocations; any two hostnames that share an address
    /// coalesce, and no duplicate connections ever open. Not a real
    /// browser — the model's upper bound.
    IdealIp,
    /// The §4 model's ideal ORIGIN coalescing: one connection per
    /// service (per origin AS), no DNS queries for coalesced names,
    /// perfect certificate SANs assumed. The model's best case.
    IdealOrigin,
}

impl BrowserKind {
    /// Does this policy consult DNS answers for IP-overlap matches?
    pub fn uses_ip_matching(self) -> bool {
        !matches!(self, BrowserKind::IdealOrigin)
    }

    /// Does IP matching extend to the full answer set (transitivity)?
    pub fn ip_transitive(self) -> bool {
        matches!(
            self,
            BrowserKind::Firefox | BrowserKind::FirefoxOrigin | BrowserKind::IdealIp
        )
    }

    /// Does this policy honour ORIGIN frames?
    pub fn uses_origin_frame(self) -> bool {
        matches!(self, BrowserKind::FirefoxOrigin | BrowserKind::IdealOrigin)
    }

    /// Does the client still issue a DNS query for a name it will
    /// coalesce (Firefox's conservative ORIGIN handling, §6.8)?
    /// Ideal-model policies skip the query; every real browser makes
    /// it.
    pub fn dns_before_coalesce(self) -> bool {
        !matches!(self, BrowserKind::IdealIp | BrowserKind::IdealOrigin)
    }

    /// Does this policy model client race behaviour (happy-eyeballs
    /// duplicate connections, speculative DNS)? The ideal models
    /// don't — §4.2 calls the races out as the gap between measured
    /// DNS and TLS counts.
    pub fn models_races(self) -> bool {
        matches!(
            self,
            BrowserKind::Chromium | BrowserKind::Firefox | BrowserKind::FirefoxOrigin
        )
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BrowserKind::Chromium => "Chromium (IP, connected-set)",
            BrowserKind::Firefox => "Firefox (IP, transitive)",
            BrowserKind::FirefoxOrigin => "Firefox + ORIGIN",
            BrowserKind::IdealIp => "Ideal Modelled IP Coalescing",
            BrowserKind::IdealOrigin => "Ideal Modelled Origin Coalescing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chromium_is_strict() {
        let k = BrowserKind::Chromium;
        assert!(k.uses_ip_matching());
        assert!(!k.ip_transitive());
        assert!(!k.uses_origin_frame());
        assert!(k.dns_before_coalesce());
        assert!(k.models_races());
    }

    #[test]
    fn firefox_is_transitive() {
        let k = BrowserKind::Firefox;
        assert!(k.ip_transitive());
        assert!(!k.uses_origin_frame());
    }

    #[test]
    fn firefox_origin_still_queries_dns() {
        let k = BrowserKind::FirefoxOrigin;
        assert!(k.uses_origin_frame());
        assert!(
            k.dns_before_coalesce(),
            "§6.8: Firefox conservatively queries DNS"
        );
    }

    #[test]
    fn ideal_models_skip_dns_and_races() {
        for k in [BrowserKind::IdealIp, BrowserKind::IdealOrigin] {
            assert!(!k.dns_before_coalesce());
            assert!(!k.models_races());
        }
        assert!(!BrowserKind::IdealOrigin.uses_ip_matching());
        assert!(BrowserKind::IdealIp.ip_transitive());
    }

    #[test]
    fn labels_match_figure3_legend() {
        assert_eq!(
            BrowserKind::IdealOrigin.label(),
            "Ideal Modelled Origin Coalescing"
        );
        assert_eq!(BrowserKind::IdealIp.label(), "Ideal Modelled IP Coalescing");
    }
}
