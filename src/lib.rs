//! # respect-origin
//!
//! Umbrella crate for the Rust reproduction of *"Respect the ORIGIN!
//! A Best-case Evaluation of Connection Coalescing in The Wild"*
//! (Singanamalla et al., IMC 2022).
//!
//! Re-exports every sub-crate under a stable, documented namespace so
//! downstream users depend on a single crate:
//!
//! - [`h2`] — from-scratch HTTP/2 framing with RFC 8336 ORIGIN frames.
//! - [`h3`] — QUIC-ish HTTP/3 model: 1-RTT/0-RTT handshakes, QPACK,
//!   Alt-Svc, cross-hostname resumption, shared address validation.
//! - [`tls`] — certificate/SAN model, CA issuance, CT logs.
//! - [`dns`] — simulated zones and a caching recursive resolver.
//! - [`netsim`] — deterministic discrete-event network simulator.
//! - [`web`] — page/resource model and HAR-style timelines.
//! - [`webgen`] — synthetic Tranco-like dataset generator.
//! - [`browser`] — browser coalescing-policy models and page loader.
//! - [`model`] — the paper's §4 best-case coalescing model.
//! - [`cdn`] — the paper's §5 CDN deployment simulator.
//! - [`stats`] — CDFs, percentiles and table rendering.

#![forbid(unsafe_code)]

pub use origin_browser as browser;
pub use origin_cdn as cdn;
pub use origin_core as model;
pub use origin_dns as dns;
pub use origin_h2 as h2;
pub use origin_h3 as h3;
pub use origin_netsim as netsim;
pub use origin_stats as stats;
pub use origin_tls as tls;
pub use origin_web as web;
pub use origin_webgen as webgen;
