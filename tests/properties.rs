//! Property-style tests over the core data structures and protocol
//! invariants.
//!
//! Formerly proptest-based; rewritten as seeded [`SimRng`]-driven fuzz
//! loops so the workspace carries no external test dependency and
//! every run exercises the exact same cases.

use bytes::BytesMut;
use respect_origin::dns::DnsName;
use respect_origin::h2::hpack::huffman;
use respect_origin::h2::hpack::{Decoder, Encoder, Header};
use respect_origin::h2::{Frame, FrameDecoder};
use respect_origin::netsim::SimRng;
use respect_origin::tls::{covers, CertificateBuilder};

// ---- generators ----

fn rand_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let n = rng.index(max_len + 1);
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

/// `[a-z]{min..=max}`.
fn rand_lower(rng: &mut SimRng, min: usize, max: usize) -> String {
    let n = rng.range_u64(min as u64, max as u64 + 1) as usize;
    (0..n)
        .map(|_| (b'a' + rng.index(26) as u8) as char)
        .collect()
}

/// `[a-z][a-z0-9-]{0..=tail_max}` — an HPACK-ish header name.
fn rand_header_name(rng: &mut SimRng, tail_max: usize) -> String {
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
    let mut s = String::new();
    s.push((b'a' + rng.index(26) as u8) as char);
    for _ in 0..rng.index(tail_max + 1) {
        s.push(*rng.choose(TAIL) as char);
    }
    s
}

/// Printable ASCII `[ -~]{0..=max}`.
fn rand_printable(rng: &mut SimRng, max: usize) -> String {
    let n = rng.index(max + 1);
    (0..n)
        .map(|_| (b' ' + rng.index(95) as u8) as char)
        .collect()
}

/// Arbitrary non-control characters (ASCII + some unicode), length
/// `0..=max` — the `\PC{0,64}`-style never-panic inputs.
fn rand_weird(rng: &mut SimRng, max: usize) -> String {
    let n = rng.index(max + 1);
    (0..n)
        .map(|_| loop {
            let c = match rng.index(4) {
                0 => char::from(b' ' + rng.index(95) as u8),
                1 => *rng.choose(&['.', '-', '*', '_', ':', '/', '@']),
                _ => match char::from_u32(rng.range_u64(0x20, 0x2_FFFF) as u32) {
                    Some(c) if !c.is_control() => c,
                    _ => continue,
                },
            };
            break c;
        })
        .collect()
}

fn rand_hostname(rng: &mut SimRng) -> String {
    format!("{}.{}", rand_lower(rng, 1, 12), rand_lower(rng, 2, 6))
}

// ---- Huffman ----

#[test]
fn huffman_roundtrips_any_bytes() {
    let mut rng = SimRng::seed_from_u64(0x48554646);
    for _ in 0..256 {
        let data = rand_bytes(&mut rng, 512);
        let mut enc = Vec::new();
        huffman::encode(&data, &mut enc);
        let dec = huffman::decode(&enc).expect("self-encoded data decodes");
        assert_eq!(dec, data);
    }
}

#[test]
fn huffman_never_expands_past_bound() {
    let mut rng = SimRng::seed_from_u64(0x424F554E);
    for _ in 0..256 {
        let data = rand_bytes(&mut rng, 256);
        // Worst-case code is 30 bits per symbol.
        let mut enc = Vec::new();
        huffman::encode(&data, &mut enc);
        assert!(enc.len() <= data.len() * 30 / 8 + 1);
        assert_eq!(huffman::encoded_len(&data), enc.len());
    }
}

#[test]
fn huffman_decode_never_panics() {
    let mut rng = SimRng::seed_from_u64(0x4E4F5041);
    for _ in 0..512 {
        // Arbitrary bytes may fail to decode, but must never panic.
        let _ = huffman::decode(&rand_bytes(&mut rng, 256));
    }
}

// ---- HPACK ----

fn rand_header(rng: &mut SimRng) -> Header {
    Header {
        name: rand_header_name(rng, 24),
        value: rand_printable(rng, 48),
        sensitive: rng.chance(0.5),
    }
}

#[test]
fn hpack_roundtrips_header_lists() {
    let mut rng = SimRng::seed_from_u64(0x48504B31);
    for _ in 0..64 {
        let headers: Vec<Header> = (0..rng.index(24)).map(|_| rand_header(&mut rng)).collect();
        let mut enc = Encoder::new();
        enc.use_huffman = rng.chance(0.5);
        let mut dec = Decoder::new();
        let block = enc.encode(&headers);
        let out = dec.decode(&block).expect("self-encoded block decodes");
        assert_eq!(out.len(), headers.len());
        for (a, b) in out.iter().zip(&headers) {
            assert_eq!(&a.name, &b.name);
            assert_eq!(&a.value, &b.value);
        }
    }
}

#[test]
fn hpack_stateful_stream_roundtrips() {
    let mut rng = SimRng::seed_from_u64(0x48504B32);
    for _ in 0..64 {
        // One encoder/decoder pair across many blocks: dynamic-table
        // state must stay synchronized.
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for _ in 0..rng.range_u64(1, 6) {
            let headers: Vec<Header> = (0..rng.index(8)).map(|_| rand_header(&mut rng)).collect();
            let block = enc.encode(&headers);
            let out = dec.decode(&block).expect("stream stays in sync");
            assert_eq!(out.len(), headers.len());
            for (a, b) in out.iter().zip(&headers) {
                assert_eq!(&a.name, &b.name);
                assert_eq!(&a.value, &b.value);
            }
        }
    }
}

#[test]
fn hpack_decoder_never_panics() {
    let mut rng = SimRng::seed_from_u64(0x48504B33);
    for _ in 0..512 {
        let mut dec = Decoder::new();
        let _ = dec.decode(&rand_bytes(&mut rng, 256));
    }
}

// ---- frame codec ----

#[test]
fn frame_decoder_never_panics_on_garbage() {
    let mut rng = SimRng::seed_from_u64(0x46524D31);
    for _ in 0..128 {
        let data = rand_bytes(&mut rng, 128);
        let decoder = FrameDecoder::default();
        let mut buf = BytesMut::from(&data[..]);
        // Drain until error or exhaustion; must never panic.
        while let Ok(Some(_)) = decoder.decode(&mut buf) {}
    }
}

#[test]
fn origin_frame_roundtrips() {
    let mut rng = SimRng::seed_from_u64(0x46524D32);
    for _ in 0..128 {
        let origins: Vec<String> = (0..rng.index(12))
            .map(|_| format!("https://{}", rand_hostname(&mut rng)))
            .collect();
        let frame = Frame::Origin {
            origins: origins.clone(),
        };
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let decoder = FrameDecoder::default();
        let out = decoder.decode(&mut buf).unwrap().unwrap();
        assert_eq!(out, frame);
    }
}

#[test]
fn data_frames_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x46524D33);
    for _ in 0..128 {
        let frame = Frame::Data {
            stream: respect_origin::h2::StreamId(rng.range_u64(1, 1000) as u32),
            data: bytes::Bytes::from(rand_bytes(&mut rng, 2048)),
            end_stream: rng.chance(0.5),
        };
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let out = FrameDecoder::default().decode(&mut buf).unwrap().unwrap();
        assert_eq!(out, frame);
    }
}

// ---- DNS names & SAN matching ----

#[test]
fn dns_name_display_reparses() {
    let mut rng = SimRng::seed_from_u64(0x444E5331);
    for _ in 0..256 {
        let labels: Vec<String> = (0..rng.range_u64(1, 5))
            .map(|_| rand_header_name(&mut rng, 10).replace('-', "x"))
            .collect();
        let s = labels.join(".");
        let n = DnsName::parse(&s).expect("constructed names parse");
        let again = DnsName::parse(n.as_ref()).unwrap();
        assert_eq!(n, again);
    }
}

#[test]
fn dns_parse_never_panics() {
    let mut rng = SimRng::seed_from_u64(0x444E5332);
    for _ in 0..512 {
        let _ = DnsName::parse(&rand_weird(&mut rng, 64));
    }
}

#[test]
fn wildcard_covers_exactly_one_extra_label() {
    let mut rng = SimRng::seed_from_u64(0x444E5333);
    for _ in 0..256 {
        let sub = rand_lower(&mut rng, 1, 8);
        let subsub = rand_lower(&mut rng, 1, 8);
        let base = format!(
            "{}.{}",
            rand_lower(&mut rng, 2, 8),
            rand_lower(&mut rng, 2, 4)
        );
        let pattern = DnsName::parse(&format!("*.{base}")).unwrap();
        let one = DnsName::parse(&format!("{sub}.{base}")).unwrap();
        let two = DnsName::parse(&format!("{subsub}.{sub}.{base}")).unwrap();
        let parent = DnsName::parse(&base).unwrap();
        assert!(covers(&pattern, &one));
        assert!(!covers(&pattern, &two));
        assert!(!covers(&pattern, &parent));
    }
}

#[test]
fn cert_covers_all_its_exact_sans() {
    let mut rng = SimRng::seed_from_u64(0x43455254);
    for _ in 0..128 {
        let sans: Vec<String> = (0..rng.range_u64(1, 20))
            .map(|_| {
                format!(
                    "{}.{}.{}",
                    rand_lower(&mut rng, 2, 8),
                    rand_lower(&mut rng, 2, 8),
                    rand_lower(&mut rng, 2, 3)
                )
            })
            .collect();
        let subject = DnsName::parse(&sans[0]).unwrap();
        let cert = CertificateBuilder::new(subject)
            .sans(sans.iter().map(|s| DnsName::parse(s).unwrap()))
            .build();
        for s in &sans {
            assert!(cert.covers(&DnsName::parse(s).unwrap()));
        }
        assert!(!cert.covers(&DnsName::parse("definitely.not.present.example").unwrap()));
    }
}

// ---- stats ----

#[test]
fn quantiles_are_monotone() {
    let mut rng = SimRng::seed_from_u64(0x53544154);
    for _ in 0..256 {
        let mut xs: Vec<f64> = (0..rng.range_u64(1, 200))
            .map(|_| rng.range_f64(0.0, 1e6))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q25 = respect_origin::stats::quantile(&xs, 0.25).unwrap();
        let q50 = respect_origin::stats::quantile(&xs, 0.50).unwrap();
        let q75 = respect_origin::stats::quantile(&xs, 0.75).unwrap();
        assert!(q25 <= q50 && q50 <= q75);
        assert!(q25 >= xs[0] && q75 <= *xs.last().unwrap());
    }
}

#[test]
fn cdf_bounds() {
    let mut rng = SimRng::seed_from_u64(0x43444631);
    for _ in 0..256 {
        let xs: Vec<u64> = (0..rng.index(200))
            .map(|_| rng.range_u64(0, 1000))
            .collect();
        let cdf = respect_origin::stats::Cdf::from_u64(&xs);
        let p = cdf.eval(rng.range_u64(0, 1200) as f64);
        assert!((0.0..=1.0).contains(&p));
    }
}

// ---- ORIGIN entries ----

#[test]
fn origin_entry_ascii_roundtrips() {
    use respect_origin::h2::OriginEntry;
    let mut rng = SimRng::seed_from_u64(0x4F524947);
    for _ in 0..256 {
        let mut host = rand_lower(&mut rng, 1, 10);
        for _ in 0..rng.range_u64(1, 4) {
            host.push('.');
            host.push_str(&rand_lower(&mut rng, 2, 8));
        }
        let s = if rng.chance(0.5) {
            format!("https://{host}:{}", rng.range_u64(1, 65535))
        } else {
            format!("https://{host}")
        };
        let e = OriginEntry::parse(&s).expect("valid origin parses");
        let again = OriginEntry::parse(&e.ascii()).expect("serialization reparses");
        assert_eq!(e, again);
    }
}

#[test]
fn origin_entry_parse_never_panics() {
    let mut rng = SimRng::seed_from_u64(0x4F524948);
    for _ in 0..512 {
        let _ = respect_origin::h2::OriginEntry::parse(&rand_weird(&mut rng, 64));
    }
}

// ---- timeline reconstruction ----

mod reconstruct_props {
    use respect_origin::dns::DnsName;
    use respect_origin::model::reconstruct;
    use respect_origin::netsim::SimRng;
    use respect_origin::web::har::{PageLoad, Phase, RequestTiming};
    use respect_origin::web::{ContentType, Page, Protocol, Resource};
    use std::net::{IpAddr, Ipv4Addr};

    /// A random page + consistent measured load: each resource either
    /// chains off an earlier one or hangs off the root; phases are
    /// arbitrary non-negative values.
    fn page_and_load(rng: &mut SimRng) -> (Page, PageLoad, Vec<bool>) {
        let root_host = DnsName::parse("root.example").unwrap();
        let mut page = Page::new(1, root_host.clone(), 1_000);
        let ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
        let mk = |idx: usize, start: f64, dns: f64, connect: f64, wait: f64, receive: f64| {
            RequestTiming {
                resource_index: idx,
                host: DnsName::parse(&format!("h{idx}.example")).unwrap(),
                ip,
                asn: 1,
                start,
                phase: Phase {
                    dns,
                    connect,
                    ssl: connect / 2.0,
                    wait,
                    receive,
                    ..Default::default()
                },
                did_dns: dns > 0.0,
                new_connection: connect > 0.0,
                coalesced: false,
                protocol: Protocol::H2,
                cert_issuer: None,
                secure: true,
                extra_connections: 0,
                extra_dns: 0,
            }
        };
        let mut requests = vec![mk(0, 0.0, 20.0, 40.0, 30.0, 10.0)];
        let mut coalescable = vec![false];
        let rows = rng.range_u64(1, 40) as usize;
        for i in 0..rows {
            let idx = i + 1;
            let mut r = Resource::new(
                DnsName::parse(&format!("h{idx}.example")).unwrap(),
                "/r",
                ContentType::Javascript,
                1_000,
            );
            if rng.chance(0.5) && idx > 1 {
                r.discovered_by = Some(idx - 1);
            }
            page.push(r);
            // Start after the parent finishes (consistent timeline).
            let parent = page.resources[idx].discovered_by.unwrap_or(0);
            let start = requests[parent].end() + 1.0;
            requests.push(mk(
                idx,
                start,
                rng.range_f64(0.0, 200.0),
                rng.range_f64(0.0, 300.0),
                rng.range_f64(0.0, 100.0),
                rng.range_f64(0.0, 100.0),
            ));
            coalescable.push(rng.chance(0.5));
        }
        let load = PageLoad {
            rank: 1,
            root_host,
            requests,
        };
        (page, load, coalescable)
    }

    #[test]
    fn reconstruction_invariants() {
        let mut rng = SimRng::seed_from_u64(0x52454331);
        for _ in 0..64 {
            let (page, load, coalescable) = page_and_load(&mut rng);
            let out = reconstruct(&page, &load, |i| coalescable[i]);
            // PLT never increases; counts never increase.
            assert!(out.plt() <= load.plt() + 1e-9);
            assert!(out.dns_queries() <= load.dns_queries());
            assert!(out.tls_connections() <= load.tls_connections());
            // Non-coalesced requests keep their phase durations.
            for (i, (a, b)) in load.requests.iter().zip(&out.requests).enumerate() {
                assert!(b.start >= 0.0);
                if i == 0 || !coalescable[i] {
                    assert_eq!(a.phase, b.phase);
                } else {
                    assert_eq!(b.phase.setup(), 0.0);
                    assert!(b.coalesced);
                }
                // Requests never move later.
                assert!(b.start <= a.start + 1e-9);
            }
            // Idempotence: reconstructing again changes nothing.
            let again = reconstruct(&page, &out, |i| coalescable[i]);
            assert_eq!(again.plt(), out.plt());
        }
    }
}

// ---- fault injection ----

/// Seeded sweep over fault profiles × thread counts: every crawl
/// terminates (even at drop=1.0 the retry budget is bounded), a
/// replayed request is still ONE request in the characterization, and
/// the merged output is byte-identical at 1, 2, and 8 workers.
#[test]
fn faulted_crawls_terminate_and_stay_deterministic() {
    use origin_bench::run_crawl_faulted;
    use respect_origin::netsim::FaultProfile;
    const SITES: u32 = 80;
    const SEED: u64 = 0xFA17;

    let clean = run_crawl_faulted(SITES, SEED, 2, None, None);
    let mut rng = SimRng::seed_from_u64(0x5EED_FA17);
    let mut profiles = vec![
        FaultProfile::none(),
        // The adversarial corner: every packet dropped.
        FaultProfile::parse("drop=1").unwrap(),
    ];
    for _ in 0..3 {
        profiles.push(FaultProfile {
            drop: rng.range_f64(0.0, 0.3),
            corrupt: rng.range_f64(0.0, 0.1),
            h421: rng.range_f64(0.0, 0.5),
            middlebox: rng.range_f64(0.0, 1.0),
        });
    }
    for profile in &profiles {
        let one = run_crawl_faulted(SITES, SEED, 1, None, Some(profile));
        let two = run_crawl_faulted(SITES, SEED, 2, None, Some(profile));
        let eight = run_crawl_faulted(SITES, SEED, 8, None, Some(profile));
        // A 421 replay or retransmit retry must never double-count the
        // request: the crawl sees exactly the clean request set.
        assert_eq!(
            one.characterization.total_requests,
            clean.characterization.total_requests,
            "{}: replays double-counted",
            profile.spec()
        );
        assert_eq!(one.characterization.pages, clean.characterization.pages);
        assert_eq!(one.measured.plt.len(), clean.measured.plt.len());
        // Thread-count invariance, down to the serialized metrics.
        let json = one.metrics.to_json();
        assert_eq!(json, two.metrics.to_json(), "{}: 1 vs 2", profile.spec());
        assert_eq!(json, eight.metrics.to_json(), "{}: 1 vs 8", profile.spec());
        assert_eq!(one.measured.plt, eight.measured.plt, "{}", profile.spec());
        // Drop/corrupt-only profiles leave the connection topology
        // untouched (retries only stretch the receive phase), so pages
        // only ever get slower. With 421s or teardowns in play the
        // topology itself changes — an evicted mapping puts a request
        // on a dedicated connection, which can legitimately speed up
        // what used to queue behind it — so no per-page bound holds.
        if profile.h421 == 0.0 && profile.middlebox == 0.0 {
            for (f, c) in one.measured.plt.iter().zip(&clean.measured.plt) {
                assert!(
                    f + 1e-9 >= *c,
                    "{}: faulted PLT sped a page up",
                    profile.spec()
                );
            }
        }
    }
}

// ---- mixed-protocol universe ----

/// Seeded sweep over legacy shares × thread counts: every
/// mixed-protocol crawl terminates, the legacy re-layout never adds or
/// drops a request (an h1 request is still ONE request in the
/// characterization, never double-counted by keep-alive reuse or a
/// close-delimited reconnect), the h1 bookkeeping balances, and the
/// merged output — metrics and redundancy report included — is
/// byte-identical at 1, 2, and 8 workers.
#[test]
fn mixed_crawls_terminate_and_stay_deterministic() {
    use origin_bench::{run_crawl_mixed, RedundancyReport};
    const SITES: u32 = 80;
    const SEED: u64 = 0x11FA;

    let clean = run_crawl_mixed(SITES, SEED, 2, None, None, 0.0);
    let mut rng = SimRng::seed_from_u64(0x5EED_11FA);
    let mut shares = vec![0.0, 1.0];
    for _ in 0..3 {
        shares.push(rng.range_f64(0.05, 0.95));
    }
    for &share in &shares {
        let one = run_crawl_mixed(SITES, SEED, 1, None, None, share);
        let two = run_crawl_mixed(SITES, SEED, 2, None, None, share);
        let eight = run_crawl_mixed(SITES, SEED, 8, None, None, share);
        // Re-hosting assets onto legacy shards changes where requests
        // go, never how many there are.
        assert_eq!(
            one.characterization.total_requests, clean.characterization.total_requests,
            "share {share}: request count changed"
        );
        assert_eq!(one.characterization.pages, clean.characterization.pages);
        assert_eq!(one.measured.plt.len(), clean.measured.plt.len());
        // Every h1 request is accounted for exactly once: it opened a
        // connection, reused a kept-alive one, or coalesced (the pool
        // lets ideal policies merge h1 requests; those never touch the
        // machine).
        let report = RedundancyReport::build(&one, share);
        assert!(
            report.h1_requests >= report.h1_connections + report.keepalive_reuse,
            "share {share}: h1 bookkeeping overflows the request count"
        );
        if share == 0.0 {
            assert_eq!(report.h1_requests, 0);
            assert!(report.redundant.iter().all(|&(_, v)| v == 0));
        } else {
            assert!(report.legacy_pages > 0, "share {share}: no legacy pages");
            assert!(report.h1_connections > 0);
        }
        // Thread-count invariance, down to the serialized bytes.
        let json = one.metrics.to_json();
        assert_eq!(json, two.metrics.to_json(), "share {share}: 1 vs 2");
        assert_eq!(json, eight.metrics.to_json(), "share {share}: 1 vs 8");
        assert_eq!(one.measured.plt, eight.measured.plt, "share {share}");
        assert_eq!(
            report.to_json(),
            RedundancyReport::build(&eight, share).to_json(),
            "share {share}: redundancy report diverged"
        );
    }
}

// ---- h3 universe ----

/// Seeded sweep over h3 shares × thread counts: every h3 crawl
/// terminates, deploying QUIC never adds or drops a request (an
/// upgraded request is still ONE request in the characterization), the
/// `h3.*` bookkeeping balances (one handshake per connection, 0-RTT
/// attempts never outrun the banked tickets), and the merged output —
/// metrics and H3 report included — is byte-identical at 1, 2, and 8
/// workers.
#[test]
fn h3_crawls_terminate_and_stay_deterministic() {
    use origin_bench::{run_crawl_h3, H3Report};
    const SITES: u32 = 80;
    const SEED: u64 = 0x4833;

    let clean = run_crawl_h3(SITES, SEED, 2, None, None, 0.0, 0.0);
    let mut rng = SimRng::seed_from_u64(0x5EED_4833);
    let mut shares = vec![0.0, 1.0];
    for _ in 0..3 {
        shares.push(rng.range_f64(0.05, 0.95));
    }
    for &share in &shares {
        let one = run_crawl_h3(SITES, SEED, 1, None, None, 0.0, share);
        let two = run_crawl_h3(SITES, SEED, 2, None, None, 0.0, share);
        let eight = run_crawl_h3(SITES, SEED, 8, None, None, 0.0, share);
        // Upgrading connections to QUIC changes how requests travel,
        // never how many there are.
        assert_eq!(
            one.characterization.total_requests, clean.characterization.total_requests,
            "share {share}: request count changed"
        );
        assert_eq!(one.characterization.pages, clean.characterization.pages);
        assert_eq!(one.measured.plt.len(), clean.measured.plt.len());
        // The h3 bookkeeping balances: every QUIC connection ran
        // exactly one handshake, 0-RTT spends only banked tickets,
        // and rejected 0-RTT attempts fell back to full handshakes.
        let report = H3Report::build(&clean, &one, share);
        assert_eq!(
            report.counter("h3.connections"),
            report.counter("h3.handshakes_1rtt") + report.counter("h3.handshakes_0rtt"),
            "share {share}: handshake ledger out of balance"
        );
        assert!(
            report.counter("h3.handshakes_0rtt") + report.counter("h3.zero_rtt_rejected")
                <= report.counter("h3.tickets_issued"),
            "share {share}: 0-rtt attempts outran the ticket supply"
        );
        assert!(
            report.counter("h3.zero_rtt_rejected") <= report.counter("h3.handshakes_1rtt"),
            "share {share}: a rejected 0-rtt must land as a 1-rtt handshake"
        );
        if share == 0.0 {
            assert_eq!(report.h3_pages, 0);
            assert!(report.counters.iter().all(|&(_, v)| v == 0));
        } else {
            assert!(report.h3_pages > 0, "share {share}: no h3 pages");
            assert!(report.counter("h3.altsvc_learned") > 0);
        }
        // Thread-count invariance, down to the serialized bytes.
        let json = one.metrics.to_json();
        assert_eq!(json, two.metrics.to_json(), "share {share}: 1 vs 2");
        assert_eq!(json, eight.metrics.to_json(), "share {share}: 1 vs 8");
        assert_eq!(one.measured.plt, eight.measured.plt, "share {share}");
        assert_eq!(
            report.to_json(),
            H3Report::build(&clean, &eight, share).to_json(),
            "share {share}: h3 report diverged"
        );
    }
}
