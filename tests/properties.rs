//! Property-based tests over the core data structures and protocol
//! invariants.

use proptest::prelude::*;
use respect_origin::h2::hpack::{Decoder, Encoder, Header};
use respect_origin::h2::hpack::huffman;
use respect_origin::h2::{Frame, FrameDecoder};
use respect_origin::dns::DnsName;
use respect_origin::tls::{covers, CertificateBuilder};
use bytes::BytesMut;

// ---- Huffman ----

proptest! {
    #[test]
    fn huffman_roundtrips_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = Vec::new();
        huffman::encode(&data, &mut enc);
        let dec = huffman::decode(&enc).expect("self-encoded data decodes");
        prop_assert_eq!(dec, data);
    }

    #[test]
    fn huffman_never_expands_past_bound(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Worst-case code is 30 bits per symbol.
        let mut enc = Vec::new();
        huffman::encode(&data, &mut enc);
        prop_assert!(enc.len() <= data.len() * 30 / 8 + 1);
        prop_assert_eq!(huffman::encoded_len(&data), enc.len());
    }

    #[test]
    fn huffman_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary bytes may fail to decode, but must never panic.
        let _ = huffman::decode(&data);
    }
}

// ---- HPACK ----

fn header_strategy() -> impl Strategy<Value = Header> {
    (
        "[a-z][a-z0-9-]{0,24}",
        "[ -~]{0,48}",
        any::<bool>(),
    )
        .prop_map(|(name, value, sensitive)| Header {
            name,
            value,
            sensitive,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hpack_roundtrips_header_lists(
        headers in proptest::collection::vec(header_strategy(), 0..24),
        use_huffman in any::<bool>(),
    ) {
        let mut enc = Encoder::new();
        enc.use_huffman = use_huffman;
        let mut dec = Decoder::new();
        let block = enc.encode(&headers);
        let out = dec.decode(&block).expect("self-encoded block decodes");
        prop_assert_eq!(out.len(), headers.len());
        for (a, b) in out.iter().zip(&headers) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.value, &b.value);
        }
    }

    #[test]
    fn hpack_stateful_stream_roundtrips(
        blocks in proptest::collection::vec(
            proptest::collection::vec(header_strategy(), 0..8), 1..6),
    ) {
        // One encoder/decoder pair across many blocks: dynamic-table
        // state must stay synchronized.
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        for headers in &blocks {
            let block = enc.encode(headers);
            let out = dec.decode(&block).expect("stream stays in sync");
            prop_assert_eq!(out.len(), headers.len());
            for (a, b) in out.iter().zip(headers) {
                prop_assert_eq!(&a.name, &b.name);
                prop_assert_eq!(&a.value, &b.value);
            }
        }
    }

    #[test]
    fn hpack_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut dec = Decoder::new();
        let _ = dec.decode(&data);
    }
}

// ---- frame codec ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frame_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let decoder = FrameDecoder::default();
        let mut buf = BytesMut::from(&data[..]);
        // Drain until error or exhaustion; must never panic.
        loop {
            match decoder.decode(&mut buf) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn origin_frame_roundtrips(hosts in proptest::collection::vec("[a-z]{1,12}\\.[a-z]{2,6}", 0..12)) {
        let origins: Vec<String> = hosts.iter().map(|h| format!("https://{h}")).collect();
        let frame = Frame::Origin { origins: origins.clone() };
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let decoder = FrameDecoder::default();
        let out = decoder.decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(out, frame);
    }

    #[test]
    fn data_frames_roundtrip(
        stream in 1u32..1000,
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        end in any::<bool>(),
    ) {
        let frame = Frame::Data {
            stream: respect_origin::h2::StreamId(stream),
            data: bytes::Bytes::from(payload),
            end_stream: end,
        };
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let out = FrameDecoder::default().decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(out, frame);
    }
}

// ---- DNS names & SAN matching ----

proptest! {
    #[test]
    fn dns_name_display_reparses(labels in proptest::collection::vec("[a-z][a-z0-9]{0,10}", 1..5)) {
        let s = labels.join(".");
        let n = DnsName::parse(&s).expect("constructed names parse");
        let again = DnsName::parse(&n.to_string()).unwrap();
        prop_assert_eq!(n, again);
    }

    #[test]
    fn dns_parse_never_panics(s in "\\PC{0,64}") {
        let _ = DnsName::parse(&s);
    }

    #[test]
    fn wildcard_covers_exactly_one_extra_label(
        sub in "[a-z]{1,8}",
        subsub in "[a-z]{1,8}",
        base in "[a-z]{2,8}\\.[a-z]{2,4}",
    ) {
        let pattern = DnsName::parse(&format!("*.{base}")).unwrap();
        let one = DnsName::parse(&format!("{sub}.{base}")).unwrap();
        let two = DnsName::parse(&format!("{subsub}.{sub}.{base}")).unwrap();
        let parent = DnsName::parse(&base).unwrap();
        prop_assert!(covers(&pattern, &one));
        prop_assert!(!covers(&pattern, &two));
        prop_assert!(!covers(&pattern, &parent));
    }

    #[test]
    fn cert_covers_all_its_exact_sans(
        sans in proptest::collection::vec("[a-z]{2,8}\\.[a-z]{2,8}\\.[a-z]{2,3}", 1..20),
    ) {
        let subject = DnsName::parse(&sans[0]).unwrap();
        let cert = CertificateBuilder::new(subject)
            .sans(sans.iter().map(|s| DnsName::parse(s).unwrap()))
            .build();
        for s in &sans {
            prop_assert!(cert.covers(&DnsName::parse(s).unwrap()));
        }
        prop_assert!(!cert.covers(&DnsName::parse("definitely.not.present.example").unwrap()));
    }
}

// ---- stats ----

proptest! {
    #[test]
    fn quantiles_are_monotone(mut xs in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q25 = respect_origin::stats::quantile(&xs, 0.25).unwrap();
        let q50 = respect_origin::stats::quantile(&xs, 0.50).unwrap();
        let q75 = respect_origin::stats::quantile(&xs, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        prop_assert!(q25 >= xs[0] && q75 <= *xs.last().unwrap());
    }

    #[test]
    fn cdf_bounds(xs in proptest::collection::vec(0u64..1000, 0..200), probe in 0u64..1200) {
        let cdf = respect_origin::stats::Cdf::from_u64(&xs);
        let p = cdf.eval(probe as f64);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}

// ---- ORIGIN entries ----

proptest! {
    #[test]
    fn origin_entry_ascii_roundtrips(
        host in "[a-z]{1,10}(\\.[a-z]{2,8}){1,3}",
        port in proptest::option::of(1u16..65535),
    ) {
        use respect_origin::h2::OriginEntry;
        let s = match port {
            Some(p) => format!("https://{host}:{p}"),
            None => format!("https://{host}"),
        };
        let e = OriginEntry::parse(&s).expect("valid origin parses");
        let again = OriginEntry::parse(&e.ascii()).expect("serialization reparses");
        prop_assert_eq!(e, again);
    }

    #[test]
    fn origin_entry_parse_never_panics(s in "\\PC{0,64}") {
        let _ = respect_origin::h2::OriginEntry::parse(&s);
    }
}

// ---- timeline reconstruction ----

mod reconstruct_props {
    use super::*;
    use respect_origin::dns::DnsName;
    use respect_origin::model::reconstruct;
    use respect_origin::web::har::{PageLoad, Phase, RequestTiming};
    use respect_origin::web::{ContentType, Page, Protocol, Resource};
    use std::net::{IpAddr, Ipv4Addr};

    /// A random page + consistent measured load: each resource either
    /// chains off an earlier one or hangs off the root; phases are
    /// arbitrary non-negative values.
    fn page_and_load_strategy() -> impl Strategy<Value = (Page, PageLoad, Vec<bool>)> {
        proptest::collection::vec(
            (
                0.0f64..200.0, // dns
                0.0f64..300.0, // connect
                0.0f64..100.0, // wait
                0.0f64..100.0, // receive
                any::<bool>(), // chains off previous resource
                any::<bool>(), // coalescable?
            ),
            1..40,
        )
        .prop_map(|rows| {
            let root_host = DnsName::parse("root.example").unwrap();
            let mut page = Page::new(1, root_host.clone(), 1_000);
            let ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
            let mk = |idx: usize, start: f64, dns: f64, connect: f64, wait: f64, receive: f64| {
                RequestTiming {
                    resource_index: idx,
                    host: DnsName::parse(&format!("h{idx}.example")).unwrap(),
                    ip,
                    asn: 1,
                    start,
                    phase: Phase {
                        dns,
                        connect,
                        ssl: connect / 2.0,
                        wait,
                        receive,
                        ..Default::default()
                    },
                    did_dns: dns > 0.0,
                    new_connection: connect > 0.0,
                    coalesced: false,
                    protocol: Protocol::H2,
                    cert_issuer: None,
                    secure: true,
                    extra_connections: 0,
                    extra_dns: 0,
                }
            };
            let mut requests =
                vec![mk(0, 0.0, 20.0, 40.0, 30.0, 10.0)];
            let mut coalescable = vec![false];
            for (i, (dns, connect, wait, receive, chain, coal)) in rows.into_iter().enumerate() {
                let idx = i + 1;
                let mut r = Resource::new(
                    DnsName::parse(&format!("h{idx}.example")).unwrap(),
                    "/r",
                    ContentType::Javascript,
                    1_000,
                );
                if chain && idx > 1 {
                    r.discovered_by = Some(idx - 1);
                }
                page.push(r);
                // Start after the parent finishes (consistent timeline).
                let parent = page.resources[idx].discovered_by.unwrap_or(0);
                let start = requests[parent].end() + 1.0;
                requests.push(mk(idx, start, dns, connect, wait, receive));
                coalescable.push(coal);
            }
            let load = PageLoad { rank: 1, root_host, requests };
            (page, load, coalescable)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn reconstruction_invariants((page, load, coalescable) in page_and_load_strategy()) {
            let out = reconstruct(&page, &load, |i| coalescable[i]);
            // PLT never increases; counts never increase.
            prop_assert!(out.plt() <= load.plt() + 1e-9);
            prop_assert!(out.dns_queries() <= load.dns_queries());
            prop_assert!(out.tls_connections() <= load.tls_connections());
            // Non-coalesced requests keep their phase durations.
            for (i, (a, b)) in load.requests.iter().zip(&out.requests).enumerate() {
                prop_assert!(b.start >= 0.0);
                if i == 0 || !coalescable[i] {
                    prop_assert_eq!(a.phase, b.phase);
                } else {
                    prop_assert_eq!(b.phase.setup(), 0.0);
                    prop_assert!(b.coalesced);
                }
                // Requests never move later.
                prop_assert!(b.start <= a.start + 1e-9);
            }
            // Idempotence: reconstructing again changes nothing.
            let again = reconstruct(&page, &out, |i| coalescable[i]);
            prop_assert_eq!(again.plt(), out.plt());
        }
    }
}
