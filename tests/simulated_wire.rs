//! Drive two sans-IO h2 endpoints over the discrete-event simulator:
//! bytes travel as timed events across a latency link, so handshake
//! and request timings come out of the event clock — the full
//! smoltcp-style composition the stack is designed for.

use respect_origin::h2::conn::{request_headers, status_of, ServerConfig};
use respect_origin::h2::{Connection, Event as H2Event, OriginSet, Settings};
use respect_origin::netsim::{EventQueue, SimDuration, SimTime};

/// A byte batch in flight in one direction.
#[derive(Debug)]
enum WireEvent {
    ToServer(Vec<u8>),
    ToClient(Vec<u8>),
}

/// Run both endpoints over a symmetric `rtt/2` one-way delay until
/// quiescence; returns the client's protocol events, each stamped with
/// its arrival time.
fn run_over_wire(
    client: &mut Connection,
    server: &mut Connection,
    one_way: SimDuration,
) -> Vec<(SimTime, H2Event)> {
    let mut q: EventQueue<WireEvent> = EventQueue::new();
    let mut client_events = Vec::new();
    // Initial flights.
    let first = client.take_outgoing();
    if !first.is_empty() {
        q.schedule_in(one_way, WireEvent::ToServer(first.to_vec()));
    }
    let first = server.take_outgoing();
    if !first.is_empty() {
        q.schedule_in(one_way, WireEvent::ToClient(first.to_vec()));
    }
    q.run(10_000, |q, now, ev| {
        match ev {
            WireEvent::ToServer(bytes) => {
                for e in server.recv(&bytes).expect("server recv") {
                    // The test server answers requests immediately.
                    if let H2Event::Headers { stream, .. } = e {
                        server.send_response(stream, 200, b"simulated");
                    }
                }
                let out = server.take_outgoing();
                if !out.is_empty() {
                    q.schedule(now + one_way, WireEvent::ToClient(out.to_vec()));
                }
            }
            WireEvent::ToClient(bytes) => {
                for e in client.recv(&bytes).expect("client recv") {
                    client_events.push((now, e));
                }
                let out = client.take_outgoing();
                if !out.is_empty() {
                    q.schedule(now + one_way, WireEvent::ToServer(out.to_vec()));
                }
            }
        }
    });
    client_events
}

#[test]
fn origin_frame_arrives_one_rtt_after_connect() {
    let mut client = Connection::client("a.example", Settings::default());
    let mut server = Connection::server(ServerConfig {
        settings: Settings::default(),
        origin_set: Some(OriginSet::from_hosts(["a.example", "b.example"])),
        authorized: vec![],
    });
    let one_way = SimDuration::from_millis(25);
    let events = run_over_wire(&mut client, &mut server, one_way);
    let (t, _) = events
        .iter()
        .find(|(_, e)| matches!(e, H2Event::OriginReceived { .. }))
        .expect("ORIGIN frame over the wire");
    // The server speaks first after its preface validation: its
    // SETTINGS+ORIGIN flight arrives exactly one one-way delay in.
    assert_eq!(*t, SimTime::ZERO + one_way);
    assert!(client.origin_allows("b.example"));
}

#[test]
fn request_response_takes_one_rtt() {
    let mut client = Connection::client("a.example", Settings::default());
    let mut server = Connection::server(ServerConfig::default());
    let one_way = SimDuration::from_millis(30);
    // Settle the handshake.
    run_over_wire(&mut client, &mut server, one_way);
    // Now issue a request and measure the response delay.
    client.send_request(&request_headers("GET", "a.example", "/"), true);
    let events = run_over_wire(&mut client, &mut server, one_way);
    let (t, e) = events
        .iter()
        .find(|(_, e)| matches!(e, H2Event::Headers { .. }))
        .expect("response headers");
    if let H2Event::Headers { headers, .. } = e {
        assert_eq!(status_of(headers), Some(200));
    }
    // Request out (one way) + response back (one way) = 1 RTT.
    assert_eq!(*t, SimTime::ZERO + one_way.times(2));
}

#[test]
fn pipelined_requests_share_the_connection_and_the_rtt() {
    let mut client = Connection::client("a.example", Settings::default());
    let mut server = Connection::server(ServerConfig::default());
    let one_way = SimDuration::from_millis(40);
    run_over_wire(&mut client, &mut server, one_way);
    // Eight multiplexed requests leave in one flight…
    for i in 0..8 {
        client.send_request(&request_headers("GET", "a.example", &format!("/{i}")), true);
    }
    let events = run_over_wire(&mut client, &mut server, one_way);
    let response_times: Vec<SimTime> = events
        .iter()
        .filter(|(_, e)| matches!(e, H2Event::Headers { .. }))
        .map(|(t, _)| *t)
        .collect();
    assert_eq!(response_times.len(), 8);
    // …and all responses arrive in the same flight: one RTT total for
    // the whole batch — the multiplexing payoff coalescing protects.
    for t in &response_times {
        assert_eq!(*t, SimTime::ZERO + one_way.times(2));
    }
    assert_eq!(client.streams_opened(), 8);
}
