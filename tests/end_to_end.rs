//! End-to-end integration: dataset → crawl → model → certificate plan
//! → deployment, asserting the paper's headline orderings hold across
//! the whole pipeline.

use respect_origin::browser::{BrowserKind, PageLoader, UniverseEnv};
use respect_origin::cdn::{
    ActiveMeasurement, DeploymentMode, PassivePipeline, SampleGroup, Treatment,
};
use respect_origin::model::certplan::{plan_site, PlanSummary};
use respect_origin::model::model::{predict, CoalescingGrouping};
use respect_origin::netsim::SimRng;
use respect_origin::webgen::{Dataset, DatasetConfig};

const SITES: u32 = 600;

type CrawlSeries = (
    Vec<f64>,
    Vec<f64>,
    Vec<f64>,
    Vec<f64>,
    Vec<f64>,
    Vec<f64>,
    PlanSummary,
);

fn crawl() -> CrawlSeries {
    let dataset = Dataset::generate(DatasetConfig {
        sites: SITES,
        ..Default::default()
    });
    let cfgs: Vec<_> = dataset.successful_sites().cloned().collect();
    let loader = PageLoader::new(BrowserKind::Chromium);
    let (mut m_dns, mut m_tls, mut m_plt) = (vec![], vec![], vec![]);
    let (mut o_dns, mut o_tls, mut o_plt) = (vec![], vec![], vec![]);
    let mut plan = PlanSummary::default();
    for site in &cfgs {
        let page = dataset.page_for(site);
        let mut env = UniverseEnv::new(&dataset);
        env.flush_dns();
        let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
        let load = loader.load(&page, &mut env, &mut rng);
        m_dns.push(load.dns_queries() as f64);
        m_tls.push(load.tls_connections() as f64);
        m_plt.push(load.plt());
        let (origin, recon) = predict(&page, &load, CoalescingGrouping::ByAs);
        o_dns.push(origin.dns_queries as f64);
        o_tls.push(origin.tls_connections as f64);
        o_plt.push(origin.plt_ms);
        // Reconstruction invariants per page.
        assert!(
            origin.plt_ms <= load.plt() + 1e-9,
            "reconstruction must not slow pages"
        );
        assert!(origin.tls_connections <= load.tls_connections());
        assert!(origin.dns_queries <= load.dns_queries());
        assert_eq!(recon.requests.len(), load.requests.len());

        let cert = dataset.universe.cert_for(&site.root_host).cloned();
        let universe = &dataset.universe;
        let p = plan_site(&page, cert.as_ref(), |a, b| {
            a.registrable() == b.registrable()
                || (universe.asn_of_host(a) != 0
                    && universe.asn_of_host(a) == universe.asn_of_host(b))
        });
        plan.add(&p);
    }
    (m_dns, m_tls, m_plt, o_dns, o_tls, o_plt, plan)
}

#[test]
fn headline_shape_reproduction() {
    let (m_dns, m_tls, m_plt, o_dns, o_tls, o_plt, plan) = crawl();
    let med = |v: &[f64]| respect_origin::stats::median(v).unwrap();

    // Table 1 medians, within tolerance bands of (14, 16, 5746ms).
    assert!(
        (11.0..=17.0).contains(&med(&m_dns)),
        "measured DNS median {}",
        med(&m_dns)
    );
    assert!(
        (12.0..=19.0).contains(&med(&m_tls)),
        "measured TLS median {}",
        med(&m_tls)
    );
    assert!(
        (3_000.0..=8_000.0).contains(&med(&m_plt)),
        "measured PLT median {}",
        med(&m_plt)
    );

    // Figure 3: ORIGIN-ideal medians near 5, with ≥50% reductions.
    assert!(
        (4.0..=7.0).contains(&med(&o_dns)),
        "origin DNS median {}",
        med(&o_dns)
    );
    assert!(
        (4.0..=7.0).contains(&med(&o_tls)),
        "origin TLS median {}",
        med(&o_tls)
    );
    let dns_red = 1.0 - med(&o_dns) / med(&m_dns);
    let tls_red = 1.0 - med(&o_tls) / med(&m_tls);
    assert!(dns_red > 0.45, "DNS reduction {dns_red}");
    assert!(tls_red > 0.55, "TLS reduction {tls_red}");

    // Figure 9: the model predicts faster, by a visible margin.
    let plt_red = 1.0 - med(&o_plt) / med(&m_plt);
    assert!(plt_red > 0.05, "PLT reduction {plt_red}");

    // §4.3: most sites need few changes (paper: 62.4% none, 92.7% ≤10).
    assert!(
        plan.unchanged_fraction() > 0.5,
        "unchanged {}",
        plan.unchanged_fraction()
    );
    assert!(
        plan.within_changes(10) > 0.9,
        "within 10 {}",
        plan.within_changes(10)
    );
    // The ideal SAN distribution shifts right.
    let (existing, ideal) = plan.figure4();
    assert!(ideal.median().unwrap() >= existing.median().unwrap());
}

#[test]
fn deployment_consistent_with_model() {
    // The §5 deployment should show what the §4 model promised:
    // experiment coalesces, control does not, both arms' PLT similar.
    let mut rng = SimRng::seed_from_u64(0xE2E);
    let group = SampleGroup::build(2_000, &mut rng);
    assert!(group.equal_byte_check());

    let (exp, ctl) = ActiveMeasurement::origin_experiment().run_both(&group, 1);
    assert!(exp.fraction_with(0) > 0.5);
    assert!(ctl.fraction_with(0) < 0.2);

    let passive = PassivePipeline::new(DeploymentMode::OriginFrames).run(&group, 2);
    let red = passive.tp_connection_reduction();
    assert!((0.35..=0.7).contains(&red), "passive reduction {red}");

    // Active and passive must agree on direction and rough size: the
    // zero-connection share in active ≈ coalesced share in passive.
    let active_coalesce_share = exp.fraction_with(0);
    assert!(
        (active_coalesce_share - red).abs() < 0.25,
        "active {active_coalesce_share} vs passive {red}"
    );

    // Control arm never coalesces in either measurement.
    let exp_visits = group.arm(Treatment::Experiment).count();
    assert!(exp_visits > 0);
}

#[test]
fn privacy_accounting_plaintext_queries_drop() {
    // §6.2: every coalesced connection hides at least one plaintext
    // DNS query. Compare resolver plaintext counters between a
    // Chromium run and an ideal-ORIGIN run on the same pages.
    let dataset = Dataset::generate(DatasetConfig {
        sites: 120,
        ..Default::default()
    });
    let cfgs: Vec<_> = dataset.successful_sites().take(40).cloned().collect();
    let count = |kind: BrowserKind, dataset: &Dataset| -> u64 {
        let loader = PageLoader::new(kind);
        let mut total = 0;
        for site in &cfgs {
            let page = dataset.page_for(site);
            let mut env = UniverseEnv::new(dataset);
            env.flush_dns();
            let mut rng = SimRng::seed_from_u64(site.page_seed);
            let _ = loader.load(&page, &mut env, &mut rng);
            total += env.resolver_stats().plaintext_queries;
        }
        total
    };
    let measured = count(BrowserKind::Chromium, &dataset);
    let ideal = count(BrowserKind::IdealOrigin, &dataset);
    assert!(
        (ideal as f64) < measured as f64 * 0.7,
        "plaintext queries: measured {measured}, ideal-ORIGIN {ideal}"
    );
}

#[test]
fn crawl_is_reproducible() {
    let a = crawl();
    let b = crawl();
    assert_eq!(a.0, b.0);
    assert_eq!(a.2, b.2);
    assert_eq!(a.6.total_sites, b.6.total_sites);
}

#[test]
fn trusting_origin_without_dns_removes_render_blocking_queries() {
    // §6.8: "the Firefox browser conservatively continues to make new
    // and subrequest-blocking DNS requests to hostnames in the ORIGIN
    // Frame … These additional queries could be avoided". Compare
    // stock Firefox+ORIGIN against the recommended behaviour.
    use respect_origin::browser::loader::BrowserConfig;
    use respect_origin::browser::PageLoader as Loader;
    use respect_origin::cdn::CdnEnv;

    let mut rng = SimRng::seed_from_u64(0x68);
    let group = SampleGroup::build(800, &mut rng);

    let run = |trust: bool| -> (u64, u64) {
        let mut env = CdnEnv::new(&group, DeploymentMode::OriginFrames);
        let mut config = BrowserConfig::new(BrowserKind::FirefoxOrigin);
        config.trust_origin_without_dns = trust;
        let loader = Loader { config };
        let mut dns = 0;
        let mut zero_conn_visits = 0;
        for site in group.arm(Treatment::Experiment) {
            let page = site.page();
            let mut r = SimRng::seed_from_u64(site.page_seed);
            let load = loader.load(&page, &mut env, &mut r);
            dns += load.dns_queries();
            let tp = origin_dns_name("cdnjs.cloudflare.com");
            if load.new_connections_to(&tp) == 0 {
                zero_conn_visits += 1;
            }
        }
        (dns, zero_conn_visits)
    };
    let (dns_stock, coalesced_stock) = run(false);
    let (dns_trusting, coalesced_trusting) = run(true);
    // Same coalescing outcome…
    assert!(
        (coalesced_stock as i64 - coalesced_trusting as i64).abs() <= 2,
        "stock {coalesced_stock} vs trusting {coalesced_trusting}"
    );
    // …but the trusting client issues measurably fewer DNS queries.
    assert!(
        dns_trusting < dns_stock,
        "dns: stock {dns_stock}, trusting {dns_trusting}"
    );
}

fn origin_dns_name(s: &str) -> respect_origin::dns::DnsName {
    respect_origin::dns::DnsName::parse(s).unwrap()
}
