//! Cross-crate wire-level integration: the h2 stack, the ORIGIN
//! extension, and the middlebox models operating on real frame bytes.

use bytes::BytesMut;
use respect_origin::h2::conn::{request_headers, status_of, ServerConfig};
use respect_origin::h2::{Connection, Event, Frame, FrameDecoder, OriginSet, Settings};
use respect_origin::netsim::fault::{CompliantMiddlebox, NonCompliantMiddlebox};
use respect_origin::netsim::{Middlebox, MiddleboxVerdict};

/// Pump two endpoints to quiescence, optionally through a middlebox
/// that inspects every frame on the server→client path. Returns the
/// client's events and whether the middlebox tore the connection down.
fn pump_through(
    client: &mut Connection,
    server: &mut Connection,
    middlebox: &dyn Middlebox,
) -> (Vec<Event>, bool) {
    let decoder = FrameDecoder::default();
    let mut events = Vec::new();
    loop {
        let c = client.take_outgoing();
        let s = server.take_outgoing();
        if c.is_empty() && s.is_empty() {
            break;
        }
        if !c.is_empty() {
            server.recv(&c).expect("server recv");
        }
        if !s.is_empty() {
            // The middlebox parses the server's bytes frame by frame.
            let mut buf = BytesMut::from(&s[..]);
            let mut forwarded = BytesMut::new();
            while let Ok(Some(frame)) = decoder.decode(&mut buf) {
                match middlebox.inspect(frame.frame_type().to_u8()) {
                    MiddleboxVerdict::Forward => frame.encode(&mut forwarded),
                    MiddleboxVerdict::DropFrame => {}
                    MiddleboxVerdict::TearDown => return (events, true),
                }
            }
            events.extend(client.recv(&forwarded).expect("client recv"));
        }
    }
    (events, false)
}

fn origin_server() -> Connection {
    Connection::server(ServerConfig {
        settings: Settings::default(),
        origin_set: Some(OriginSet::from_hosts(["a.example", "b.example"])),
        authorized: vec!["a.example".into(), "b.example".into()],
    })
}

#[test]
fn full_request_cycle_through_compliant_path() {
    let mut client = Connection::client("a.example", Settings::default());
    let mut server = origin_server();
    let (events, torn) = pump_through(&mut client, &mut server, &CompliantMiddlebox);
    assert!(!torn);
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::OriginReceived { .. })));
    assert!(client.origin_allows("b.example"));

    // Coalesced request round trip.
    let stream = client.send_request(&request_headers("GET", "b.example", "/x.js"), true);
    // Serve manually.
    loop {
        let c = client.take_outgoing();
        if c.is_empty() {
            break;
        }
        for ev in server.recv(&c).unwrap() {
            if let Event::Headers { stream, .. } = ev {
                server.send_response(stream, 200, b"body");
            }
        }
    }
    let (events, torn) = pump_through(&mut client, &mut server, &CompliantMiddlebox);
    assert!(!torn);
    let status = events
        .iter()
        .find_map(|e| match e {
            Event::Headers {
                stream: s, headers, ..
            } if *s == stream => status_of(headers),
            _ => None,
        })
        .expect("response");
    assert_eq!(status, 200);
}

#[test]
fn non_compliant_middlebox_kills_origin_enabled_connections() {
    // The §6.7 incident, on real bytes: the buggy agent sees the
    // ORIGIN frame type and tears the connection down.
    let mut client = Connection::client("a.example", Settings::default());
    let mut server = origin_server();
    let buggy = NonCompliantMiddlebox::default();
    let (_, torn) = pump_through(&mut client, &mut server, &buggy);
    assert!(torn, "ORIGIN frame must trigger the §6.7 teardown");

    // Without ORIGIN frames the same path works.
    let mut client = Connection::client("a.example", Settings::default());
    let mut server = Connection::server(ServerConfig {
        settings: Settings::default(),
        origin_set: None,
        authorized: vec!["a.example".into()],
    });
    let (_, torn) = pump_through(&mut client, &mut server, &buggy);
    assert!(!torn, "no unknown frames → the buggy agent stays quiet");
}

#[test]
fn client_fails_open_when_origin_frame_dropped() {
    // A middlebox that silently drops unknown frames instead of
    // tearing down: the client never learns the origin set and simply
    // doesn't coalesce — the spec's fail-open outcome.
    struct Dropper;
    impl Middlebox for Dropper {
        fn inspect(&self, frame_type: u8) -> MiddleboxVerdict {
            if frame_type > 0x09 {
                MiddleboxVerdict::DropFrame
            } else {
                MiddleboxVerdict::Forward
            }
        }
        fn name(&self) -> &str {
            "dropper"
        }
    }
    let mut client = Connection::client("a.example", Settings::default());
    let mut server = origin_server();
    let (events, torn) = pump_through(&mut client, &mut server, &Dropper);
    assert!(!torn);
    assert!(!events
        .iter()
        .any(|e| matches!(e, Event::OriginReceived { .. })));
    assert!(!client.origin_allows("b.example"));
    assert!(
        client.origin_allows("a.example"),
        "connected origin still implicit"
    );
}

#[test]
fn hand_crafted_origin_frame_bytes_match_rfc_layout() {
    // RFC 8336 §2: each entry is a 16-bit length + ASCII origin.
    let set = OriginSet::from_hosts(["x.example"]);
    let wire = set.to_frame().to_bytes();
    // 9-byte header: length 2+17=19, type 0x0c, flags 0, stream 0.
    assert_eq!(
        &wire[..9],
        &[0x00, 0x00, 0x13, 0x0c, 0x00, 0x00, 0x00, 0x00, 0x00]
    );
    // Entry: len 17, "https://x.example".
    assert_eq!(&wire[9..11], &[0x00, 0x11]);
    assert_eq!(&wire[11..], b"https://x.example");
}

#[test]
fn frame_decoder_resyncs_across_many_frames() {
    // Interleave every frame type and replay the stream byte by byte.
    let mut all = BytesMut::new();
    Frame::Settings {
        ack: false,
        params: vec![(0x4, 1 << 20)],
    }
    .encode(&mut all);
    OriginSet::from_hosts(["a.example"])
        .to_frame()
        .encode(&mut all);
    Frame::Ping {
        ack: false,
        payload: [7; 8],
    }
    .encode(&mut all);
    Frame::WindowUpdate {
        stream: respect_origin::h2::StreamId(0),
        increment: 100,
    }
    .encode(&mut all);
    let decoder = FrameDecoder::default();
    let mut buf = BytesMut::new();
    let mut decoded = 0;
    for &b in all.iter() {
        buf.extend_from_slice(&[b]);
        while let Some(_f) = decoder.decode(&mut buf).expect("no decode error") {
            decoded += 1;
        }
    }
    assert_eq!(decoded, 4);
}
