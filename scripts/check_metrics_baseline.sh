#!/usr/bin/env bash
# CI perf gate: compare the deterministic sections of a fresh
# `repro --metrics` export against the committed baseline.
#
#   usage: check_metrics_baseline.sh <metrics.json> [baseline.json]
#
# Work counters (h2 frames decoded, DNS lookups, connections opened,
# …), histograms, and simulated phase totals are byte-stable across
# machines and thread counts, so ANY drift means the pipeline is doing
# a different amount of work than the commit that last refreshed the
# baseline. Wall-clock `runtime_ms` is stripped before comparing, and
# so are the optional-subsystem counter families listed below: the
# committed baseline is a clean pure-h2 unobserved run where they are
# absent by design (such counters only materialize when their
# subsystem actually did something; DESIGN.md §15), so exports from
# mixed / faulted / observed runs can still be gated against it.
#
# Requires jq.
set -euo pipefail

metrics=${1:?usage: check_metrics_baseline.sh <metrics.json> [baseline.json]}
baseline=${2:-$(dirname "$0")/../reports/metrics_baseline.json}

# The one list of optional counter-family prefixes. Extend it when a
# new gated-when-silent subsystem appears; never special-case one
# family in the jq below.
optional_prefixes='["h1.", "h3.", "fault.", "obs."]'

strip="del(.runtime_ms) | .counters |= with_entries(select(.key as \$k | ${optional_prefixes} | map(\$k | startswith(.)) | any | not))"
if diff -u \
    <(jq -S "$strip" "$baseline") \
    <(jq -S "$strip" "$metrics"); then
    echo "perf gate: work counters match $baseline"
else
    cat >&2 <<'EOF'

perf gate FAILED: the pipeline's work counters drifted from
reports/metrics_baseline.json (see diff above; left = baseline,
right = this run).

If the drift is an intended behaviour change, regenerate the committed
baseline with scripts/refresh_reports.sh and include it in the same
commit, explaining the counter movement in the commit message.
EOF
    exit 1
fi
