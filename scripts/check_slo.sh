#!/usr/bin/env bash
# CI SLO gate over the streaming timeline export (DESIGN.md §15).
#
#   usage: check_slo.sh <timeline.json> [reference.json]
#
# Two layers:
#
#  1. SLO assertions on the whole-crawl `.totals` section: coalescing
#     happened, the ORIGIN model saves a majority of TLS handshakes,
#     tail PLT is bounded, every injected fault was recovered, and the
#     h1 redundancy analysis matches the paper's qualitative claim.
#     Thresholds carry deliberate margin over the committed reference
#     (see values there) so they gate regressions, not noise — the
#     byte-compare below is the exact gate.
#
#  2. Drift: the export is deterministic for the reference flags
#     (2000 sites, seed 0x0516, 25% legacy, reference fault profile,
#     4000 ms windows), so a byte-compare against the committed
#     reference catches ANY behaviour change. Pass `-` as the
#     reference to skip this layer (e.g. for ad-hoc timelines).
#
# Requires jq.
set -euo pipefail

timeline=${1:?usage: check_slo.sh <timeline.json> [reference.json]}
reference=${2:-$(dirname "$0")/../reports/timeline_reference.json}

fail=0
slo() { # slo <label> <jq boolean expr> <jq value expr>
    if jq -e "$2" "$timeline" >/dev/null; then
        echo "SLO ok:   $1 ($(jq -c "$3" "$timeline"))"
    else
        echo "SLO FAIL: $1 — got $(jq -c "$3" "$timeline")" >&2
        fail=1
    fi
}

slo "every injected fault recovered" \
    '.totals.rates.fault_recovery_rate == 1' '.totals.rates.fault_recovery_rate'
slo "measured crawl coalesces (rate >= 0.02)" \
    '.totals.rates.coalesce_rate >= 0.02' '.totals.rates.coalesce_rate'
slo "ORIGIN model saves >= 50% of TLS handshakes" \
    '.totals.rates.tls_reduction_ideal_origin >= 0.5' '.totals.rates.tls_reduction_ideal_origin'
slo "ideal-ORIGIN finds >= 70% of h1 connections redundant" \
    '.totals.rates.h1_redundant_ideal_origin_share >= 0.7' '.totals.rates.h1_redundant_ideal_origin_share'
slo "resolver cache hit rate >= 0.8" \
    '.totals.rates.dns_cache_hit_rate >= 0.8' '.totals.rates.dns_cache_hit_rate'
slo "p99 PLT bounded (<= 20 s)" \
    '.totals.sketches.plt_us.p99 <= 20000000' '.totals.sketches.plt_us.p99'
slo "every visit landed on the timeline" \
    '.totals.counters.visits == ([.windows[].counters.visits] | add)' '.totals.counters.visits'

if [ "$reference" != "-" ]; then
    if cmp -s "$reference" "$timeline"; then
        echo "SLO gate: timeline matches $reference byte for byte"
    else
        cat >&2 <<EOF
SLO gate FAILED: the timeline drifted from $reference.
The export is deterministic for the reference flags, so this is a
behaviour change. If intended, regenerate the committed reference with
scripts/refresh_reports.sh and explain the movement in the commit.
EOF
        fail=1
    fi
fi

exit "$fail"
