#!/usr/bin/env bash
# Regenerate every committed reference artifact after an intentional
# behaviour change:
#
#   reports/repro_full.txt        reference stdout (EXPERIMENTS.md numbers)
#   reports/repro_full.log        reference stderr (progress + wire checks)
#   reports/series.json           raw figure series for the same run
#   reports/metrics_baseline.json deterministic work counters gated by CI
#   reports/trace_site3.json      reference Perfetto span trace of the
#                                 rank-3 visit (EXPERIMENTS.md tracing)
#   reports/faults_reference.json resilience report for the reference
#                                 fault profile (EXPERIMENTS.md faults)
#   reports/redundancy_reference.json
#                                 redundant-connections report for the
#                                 reference mixed universe (25% legacy;
#                                 EXPERIMENTS.md redundancy)
#   reports/timeline_reference.json
#                                 streaming time-series export of the
#                                 observed reference crawl, gated by
#                                 scripts/check_slo.sh in CI
#                                 (EXPERIMENTS.md time series)
#   reports/h3_reference.json     h2-vs-h3 comparison for the
#                                 reference h3 universe (50% h3 share;
#                                 EXPERIMENTS.md h3)
#
# The full reference run matches EXPERIMENTS.md (6,000 sites, seed
# 0x0516, one thread — thread count only affects wall clock, but the
# log banner prints it). The metrics baseline matches the flags the CI
# perf-gate job uses, with wall-clock `runtime_ms` stripped so the
# committed file is machine-independent.
#
# Requires jq. Run from anywhere; commits nothing.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p origin-bench

echo "refresh: full reference run (6000 sites)…" >&2
target/release/repro --sites 6000 --threads 1 --json reports/series.json \
    >reports/repro_full.txt 2>reports/repro_full.log

echo "refresh: metrics baseline (perf-gate flags)…" >&2
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
target/release/repro --sites 500 --metrics "$tmp" >/dev/null 2>&1
jq -S 'del(.runtime_ms)' "$tmp" >reports/metrics_baseline.json

echo "refresh: reference span trace (rank-3 visit)…" >&2
target/release/repro trace --site 3 --out reports/trace_site3.json 2>/dev/null
jq -e '.traceEvents | length > 0' reports/trace_site3.json >/dev/null

echo "refresh: resilience report (reference fault profile)…" >&2
target/release/repro --sites 2000 --faults drop=0.01,h421=0.005,middlebox=0.1 \
    --faults-report reports/faults_reference.json --only t1 >/dev/null 2>&1
jq -e '.fault_counters."fault.retries" > 0' reports/faults_reference.json >/dev/null

echo "refresh: redundancy report (reference mixed universe, 25% legacy)…" >&2
target/release/repro --sites 2000 --legacy-share 0.25 \
    --redundancy-report reports/redundancy_reference.json --only t3 >/dev/null 2>&1
jq -e '.h1.connections_opened > 0' reports/redundancy_reference.json >/dev/null

echo "refresh: timeline reference (observed mixed faulted universe)…" >&2
target/release/repro --sites 2000 --threads 1 --legacy-share 0.25 \
    --faults drop=0.01,h421=0.005,middlebox=0.1 \
    --timeline reports/timeline_reference.json --only t1 >/dev/null 2>&1
# The fresh reference must clear its own SLO gate (drift layer is a
# self-compare here; the thresholds are the real check).
scripts/check_slo.sh reports/timeline_reference.json reports/timeline_reference.json >/dev/null

echo "refresh: h3 report (reference h3 universe, 50% share)…" >&2
target/release/repro --sites 2000 --h3-share 0.5 \
    --h3-report reports/h3_reference.json --only t3 >/dev/null 2>&1
jq -e '.h3_counters."h3.connections" > 0' reports/h3_reference.json >/dev/null

echo "refresh: done — review the diff, then commit reports/" >&2
