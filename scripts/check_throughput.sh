#!/usr/bin/env bash
# Throughput drift gate against the committed BENCH_5.json baseline.
#
#   usage: check_throughput.sh <metrics.json> [baseline.json]
#
# Computes crawl sites/sec from the wall-clock `runtime_ms.crawl` in a
# fresh `repro --metrics` export and compares it with the `after`
# throughput recorded in the baseline file.
#
# Environment:
#   THROUGHPUT_MIN_RATIO  minimum acceptable measured/baseline ratio
#                         (default 0.8, i.e. fail at >20% regression)
#   THROUGHPUT_WARN_ONLY  when set to 1, a breach prints the notice but
#                         exits 0 (the pre-BENCH_5 advisory behaviour)
#
# Wall clock varies by machine, so the CI baseline was recorded with
# the same best-of-N discipline this gate expects from its input:
# pass the fastest of a few runs, not a single sample.
#
# Requires jq.
set -euo pipefail

metrics=${1:?usage: check_throughput.sh <metrics.json> [baseline.json]}
baseline=${2:-$(dirname "$0")/../BENCH_5.json}
min_ratio=${THROUGHPUT_MIN_RATIO:-0.8}
warn_only=${THROUGHPUT_WARN_ONLY:-0}

# The metrics export must come from a run with the same --sites as
# the baseline records (the CI step and BENCH_5.json both use 2000).
sites=$(jq -r '.sites' "$baseline")
base_rate=$(jq -r '.after.crawl_sites_per_sec' "$baseline")
crawl_ms=$(jq -r '.runtime_ms.crawl' "$metrics")

rate=$(jq -n --arg s "$sites" --arg ms "$crawl_ms" '($s|tonumber) / (($ms|tonumber) / 1000)')
ratio=$(jq -n --arg r "$rate" --arg b "$base_rate" '($r|tonumber) / ($b|tonumber)')

printf 'throughput gate: crawl %.0f sites/sec (baseline %.0f, ratio %.2f, floor %.2f)\n' \
    "$rate" "$base_rate" "$ratio" "$min_ratio"

if jq -e -n --arg ratio "$ratio" --arg min "$min_ratio" \
    '($ratio|tonumber) < ($min|tonumber)' >/dev/null; then
    cat >&2 <<EOF

FAIL: crawl throughput fell below ${min_ratio}x of the committed
$(basename "$baseline") baseline. Wall clock depends on the machine; if
this machine is known to be comparable, a hot path has regressed.
Re-measure (best of several runs) with:

  cargo run --release -p origin-bench --bin repro -- --sites $sites --threads 1 --metrics /tmp/m.json

and compare runtime_ms.crawl against $(basename "$baseline"). Set
THROUGHPUT_WARN_ONLY=1 to downgrade this gate to a warning, or
THROUGHPUT_MIN_RATIO to move the floor.
EOF
    if [ "$warn_only" != "1" ]; then
        exit 1
    fi
    echo "(THROUGHPUT_WARN_ONLY=1: continuing despite the breach)" >&2
fi
exit 0
