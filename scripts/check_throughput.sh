#!/usr/bin/env bash
# Throughput drift gate against a committed BENCH_*.json baseline.
#
#   usage: check_throughput.sh <metrics.json> [baseline.json]
#          check_throughput.sh --measure '<command with {out}>' [baseline.json]
#
# First form: computes workload/sec from the wall-clock runtime in an
# existing `--metrics` export and compares it with the `after`
# throughput recorded in the baseline file.
#
# Second form: runs the measurement command THROUGHPUT_RUNS times
# (default 3), substituting `{out}` with a fresh metrics path each
# run, prints every run's rate (the noise floor is visible in CI
# logs), and gates on the best run — the same best-of-N discipline the
# committed baselines were recorded with.
#
# The baseline file is self-describing (with BENCH_5-compatible
# fallbacks):
#   .runtime_key      key under .runtime_ms to read   (default "crawl")
#   .workload_count   units of work per run           (default .sites)
#   .after.rate_per_sec  baseline units/sec  (default .after.crawl_sites_per_sec)
#
# Environment:
#   THROUGHPUT_RUNS       best-of-N for --measure mode (default 3)
#   THROUGHPUT_MIN_RATIO  minimum acceptable measured/baseline ratio
#                         (default 0.8, i.e. fail at >20% regression)
#   THROUGHPUT_WARN_ONLY  when set to 1, a breach prints the notice but
#                         exits 0 (the pre-BENCH_5 advisory behaviour)
#
# Requires jq.
set -euo pipefail

usage="usage: check_throughput.sh <metrics.json>|--measure '<cmd with {out}>' [baseline.json]"

mode=metrics
measure_cmd=""
if [ "${1:-}" = "--measure" ]; then
    mode=measure
    measure_cmd=${2:?$usage}
    baseline=${3:-$(dirname "$0")/../BENCH_5.json}
else
    metrics=${1:?$usage}
    baseline=${2:-$(dirname "$0")/../BENCH_5.json}
fi
min_ratio=${THROUGHPUT_MIN_RATIO:-0.8}
warn_only=${THROUGHPUT_WARN_ONLY:-0}
runs=${THROUGHPUT_RUNS:-3}

runtime_key=$(jq -r '.runtime_key // "crawl"' "$baseline")
workload=$(jq -r '.workload_count // .sites' "$baseline")
base_rate=$(jq -r '.after.rate_per_sec // .after.crawl_sites_per_sec' "$baseline")

rate_from_metrics() {
    local ms
    ms=$(jq -r ".runtime_ms.${runtime_key}" "$1")
    jq -n --arg w "$workload" --arg ms "$ms" '($w|tonumber) / (($ms|tonumber) / 1000)'
}

if [ "$mode" = "measure" ]; then
    # The measurement command must write a --metrics export to {out};
    # run it N times and keep the fastest (best-of-N).
    best_rate=0
    worst_rate=""
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
    for i in $(seq 1 "$runs"); do
        out="$tmpdir/metrics_$i.json"
        eval "${measure_cmd//\{out\}/$out}" >/dev/null
        r=$(rate_from_metrics "$out")
        printf 'throughput run %d/%d: %.0f %s/sec\n' "$i" "$runs" "$r" "$runtime_key"
        if jq -e -n --arg r "$r" --arg b "$best_rate" \
            '($r|tonumber) > ($b|tonumber)' >/dev/null; then
            best_rate=$r
        fi
        if [ -z "$worst_rate" ] || jq -e -n --arg r "$r" --arg w "$worst_rate" \
            '($r|tonumber) < ($w|tonumber)' >/dev/null; then
            worst_rate=$r
        fi
    done
    rate=$best_rate
    printf 'throughput best-of-%d: %.0f %s/sec (spread %.0f–%.0f, %.1f%%)\n' \
        "$runs" "$rate" "$runtime_key" "$worst_rate" "$best_rate" \
        "$(jq -n --arg b "$best_rate" --arg w "$worst_rate" \
            'if ($b|tonumber) > 0 then 100 * (($b|tonumber) - ($w|tonumber)) / ($b|tonumber) else 0 end')"
else
    rate=$(rate_from_metrics "$metrics")
fi

ratio=$(jq -n --arg r "$rate" --arg b "$base_rate" '($r|tonumber) / ($b|tonumber)')

printf 'throughput gate: %s %.0f/sec over %s units (baseline %.0f, ratio %.2f, floor %.2f)\n' \
    "$runtime_key" "$rate" "$workload" "$base_rate" "$ratio" "$min_ratio"

if jq -e -n --arg ratio "$ratio" --arg min "$min_ratio" \
    '($ratio|tonumber) < ($min|tonumber)' >/dev/null; then
    cat >&2 <<EOF

FAIL: ${runtime_key} throughput fell below ${min_ratio}x of the committed
$(basename "$baseline") baseline. Wall clock depends on the machine; if
this machine is known to be comparable, a hot path has regressed.
Re-measure (best of several runs, THROUGHPUT_RUNS to raise N) and
compare runtime_ms.${runtime_key} against $(basename "$baseline"). Set
THROUGHPUT_WARN_ONLY=1 to downgrade this gate to a warning, or
THROUGHPUT_MIN_RATIO to move the floor.
EOF
    if [ "$warn_only" != "1" ]; then
        exit 1
    fi
    echo "(THROUGHPUT_WARN_ONLY=1: continuing despite the breach)" >&2
fi
exit 0
