#!/usr/bin/env bash
# Throughput drift check against the committed BENCH_4.json baseline.
#
#   usage: check_throughput.sh <metrics.json> [baseline.json]
#
# Computes crawl sites/sec from the wall-clock `runtime_ms.crawl` in a
# fresh `repro --metrics` export and compares it with the `after`
# throughput recorded in BENCH_4.json. Unlike the work-counter gate
# (check_metrics_baseline.sh), wall clock varies by machine and load,
# so a regression here is a WARNING, not a failure: it exits 0 either
# way and prints a loud notice when throughput fell more than 20%
# below the recorded baseline.
#
# Requires jq.
set -euo pipefail

metrics=${1:?usage: check_throughput.sh <metrics.json> [baseline.json]}
baseline=${2:-$(dirname "$0")/../BENCH_4.json}

# The metrics export must come from a run with the same --sites as
# the baseline records (the CI step and BENCH_4.json both use 2000).
sites=$(jq -r '.sites' "$baseline")
base_rate=$(jq -r '.after.crawl_sites_per_sec' "$baseline")
crawl_ms=$(jq -r '.runtime_ms.crawl' "$metrics")

rate=$(jq -n --arg s "$sites" --arg ms "$crawl_ms" '($s|tonumber) / (($ms|tonumber) / 1000)')
ratio=$(jq -n --arg r "$rate" --arg b "$base_rate" '($r|tonumber) / ($b|tonumber)')

printf 'throughput check: crawl %.0f sites/sec (baseline %.0f, ratio %.2f)\n' \
    "$rate" "$base_rate" "$ratio"

if jq -e -n --arg ratio "$ratio" '($ratio|tonumber) < 0.8' >/dev/null; then
    cat >&2 <<EOF

WARNING: crawl throughput is more than 20% below the committed
BENCH_4.json baseline. Wall clock depends on the machine, so this is
informational — but if it reproduces on comparable hardware, a hot
path has likely regressed. Re-measure with:

  cargo run --release -p origin-bench --bin repro -- --sites $sites --threads 1 --metrics /tmp/m.json

and compare runtime_ms.crawl against BENCH_4.json.
EOF
fi
exit 0
