//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The workspace builds fully offline, so this vendored crate
//! implements the subset of criterion's API the benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input`, throughput annotations) with a simple
//! calibrate-then-sample timing loop. Reported numbers are median /
//! min / max nanoseconds per iteration.
//!
//! CLI: a positional argument filters benchmarks by substring;
//! `--test` runs each benchmark body once (used by `cargo bench --
//! --test` smoke runs); other flags cargo passes (e.g. `--bench`)
//! are ignored.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation. Accepted and ignored by this stand-in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form; the group name provides the prefix.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            test_mode,
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run(&id.id, sample_size, &mut f);
        self
    }

    fn run(&self, full_id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {full_id} ... ok");
            return;
        }
        // Calibrate: grow the per-sample iteration count until one
        // sample takes ≥ ~5 ms, so cheap bodies aren't all timer noise.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "{full_id:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Record throughput (accepted, not reported by this stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.c.run(&full, self.sample_size, &mut f);
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.c.run(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
