//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! The workspace builds fully offline, so instead of the real crate
//! this vendored module implements exactly the API surface the h2
//! codec and its tests use: `Bytes`, `BytesMut`, and the `Buf` /
//! `BufMut` traits with big-endian integer accessors. Semantics match
//! the upstream crate for that surface (views shrink from the front
//! on reads; writers append).

use std::ops::{Deref, DerefMut};

/// An immutable, cheaply clonable byte buffer.
///
/// The real crate shares memory on clone; this stand-in clones the
/// backing vector, which is fine at simulation frame sizes.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Wrap a static byte slice (copied here; upstream borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Split off and return the first `at` bytes.
    ///
    /// Panics when fewer than `at` bytes remain, like upstream.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        Bytes {
            data: std::mem::replace(&mut self.data, rest),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes {
            data: data.into_bytes(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes {
            data: data.as_bytes().to_vec(),
        }
    }
}

impl From<BytesMut> for Bytes {
    fn from(data: BytesMut) -> Self {
        data.freeze()
    }
}

/// A growable byte buffer that also supports front-consuming reads.
///
/// Reads (`Buf`) advance a cursor; writes (`BufMut` or
/// `extend_from_slice`) append at the back. `Deref` exposes only the
/// unread remainder, matching upstream behaviour.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut {
            data: Vec::new(),
            head: 0,
        }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Append a slice at the back.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze the unread remainder into an immutable `Bytes`.
    pub fn freeze(mut self) -> Bytes {
        Bytes {
            data: self.data.split_off(self.head),
        }
    }

    /// Split off and return the entire unread remainder, leaving this
    /// buffer empty.
    pub fn split(&mut self) -> BytesMut {
        self.split_to(self.len())
    }

    /// Split off and return the first `at` unread bytes.
    ///
    /// Panics when fewer than `at` bytes remain, like upstream.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.remaining(), "split_to out of bounds");
        let piece = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        BytesMut {
            data: piece,
            head: 0,
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
            head: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, head: 0 }
    }
}

/// Read side: consume bytes from the front, big-endian integers.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes. Panics when out of bounds.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "get_u16 underflow");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32 underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian unsigned integer of `nbytes` bytes (≤ 8).
    fn get_uint(&mut self, nbytes: usize) -> u64 {
        assert!(
            nbytes <= 8 && self.remaining() >= nbytes,
            "get_uint underflow"
        );
        let mut v: u64 = 0;
        for _ in 0..nbytes {
            v = (v << 8) | self.get_u8() as u64;
        }
        v
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance out of bounds");
        self.data.drain(..cnt);
    }
}

/// Write side: append bytes at the back, big-endian integers.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append the low `nbytes` bytes of `v`, big-endian (≤ 8).
    fn put_uint(&mut self, v: u64, nbytes: usize) {
        assert!(nbytes <= 8, "put_uint width");
        let be = v.to_be_bytes();
        self.put_slice(&be[8 - nbytes..]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        b.put_uint(0x0a0b0c, 3);
        assert_eq!(b.remaining(), 10);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_uint(3), 0x0a0b0c);
        assert!(b.is_empty());
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let hello = b.split_to(5);
        assert_eq!(&hello[..], b"hello");
        b.advance(1);
        assert_eq!(b.freeze(), Bytes::from_static(b"world"));
    }

    #[test]
    fn deref_tracks_cursor() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4][..]);
        b.advance(2);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(b.len(), 2);
    }
}
